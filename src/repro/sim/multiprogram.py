"""Multiprogram memory-link simulation (§VI-C, Figs 15 & 16).

N programs share one link, one LLC (N× the single-program share) and
one L4. Their access streams interleave with jitter
(:class:`~repro.trace.mixes.MultiprogramWorkload`), and compression is
accounted *per program* so each program's ratio can be normalized to
its single-program result — exactly the paper's methodology.

What the shared stream does to each scheme:

- gzip's window is a fixed stream resource; interleaving unrelated
  programs dilutes it (destructive mixes, Fig 16) while replicated
  copies of one program can help it a little (Fig 15).
- CABLE's dictionary is the shared cache itself: it scales with the
  LLC (which grew N×) and can even find cross-program similarity, so
  it holds or improves where gzip degrades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cache.hierarchy import InclusivePair, TransferEvent
from repro.cache.setassoc import CacheGeometry, SetAssociativeCache
from repro.core.config import CableConfig
from repro.core.encoder import CableLinkPair
from repro.link.channel import LinkModel
from repro.sim.memlink import _StreamCodec, scale_profile
from repro.trace.mixes import MultiprogramWorkload


@dataclass
class SlotAccounting:
    benchmark: str
    transfers: int = 0
    raw_bits: int = 0
    payload_bits: int = 0
    flits: int = 0
    raw_flits: int = 0

    def ratio(self, link: LinkModel) -> float:
        if self.flits == 0:
            return 1.0
        return self.raw_flits / self.flits


@dataclass
class MultiprogramResult:
    benchmarks: Tuple[str, ...]
    scheme: str
    link: LinkModel
    slots: List[SlotAccounting] = field(default_factory=list)

    @property
    def per_slot_ratio(self) -> List[float]:
        return [slot.ratio(self.link) for slot in self.slots]

    @property
    def overall_ratio(self) -> float:
        flits = sum(s.flits for s in self.slots)
        raw = sum(s.raw_flits for s in self.slots)
        return raw / flits if flits else 1.0


def run_multiprogram(
    benchmark_names: Sequence[str],
    scheme: str = "cable",
    preset=None,
    replicate: bool = False,
    seed: int = 0,
    cable: Optional[CableConfig] = None,
    verify: bool = True,
) -> MultiprogramResult:
    """Run N programs on one shared link.

    ``preset`` is an :class:`~repro.experiments.base.ScalePreset` (or
    None for the default); per-program accesses and the single-program
    cache share both come from it, so results are directly comparable
    with single-program runs at the same preset.
    """
    from repro.experiments.base import resolve_scale

    preset = resolve_scale(preset or "default")
    names = tuple(benchmark_names)
    n = len(names)
    link_model = LinkModel()

    workload = MultiprogramWorkload(names, seed=seed, replicate=replicate)
    # Scale each program's footprint like the single-program runs do.
    for model in workload.workloads:
        model.profile = scale_profile(model.profile, preset.ws_scale)

    llc = SetAssociativeCache(
        CacheGeometry(preset.llc_bytes * n, 8), name="llc-shared"
    )
    l4 = SetAssociativeCache(
        CacheGeometry(preset.l4_bytes * n, 16), name="l4-shared"
    )
    pair = InclusivePair(l4, llc, workload.backing.read, workload.backing.write)

    result = MultiprogramResult(benchmarks=names, scheme=scheme, link=link_model)
    result.slots = [SlotAccounting(benchmark=b) for b in names]
    state = {"slot": 0, "counting": False}
    line_flits = link_model.flits_for(64 * 8)

    def record(data: bytes, payload_bits: int) -> None:
        if not state["counting"]:
            return
        slot = result.slots[state["slot"]]
        slot.transfers += 1
        slot.raw_bits += len(data) * 8
        slot.payload_bits += payload_bits
        slot.flits += link_model.flits_for(payload_bits)
        slot.raw_flits += line_flits

    if scheme == "cable":
        cable_link = CableLinkPair(cable or CableConfig(), pair, verify=verify)
        cable_link.keep_transfers = False
        original = cable_link._account

        def hooked(direction, event, payload, search):
            original(direction, event, payload, search)
            record(event.data, payload.size_bits)

        cable_link._account = hooked
    elif scheme == "raw":
        def observe(event: TransferEvent) -> None:
            if event.kind in ("fill", "writeback"):
                record(event.data, len(event.data) * 8)

        pair.add_observer(observe)
    else:
        window = None
        if scheme == "gzip":
            scale = preset.llc_bytes / (1024 * 1024)
            if scale < 1.0:
                window = max(1024, int(32 * 1024 * scale))
        fill_codec = _StreamCodec(scheme, verify, window)
        wb_codec = _StreamCodec(scheme, verify, window)

        def observe(event: TransferEvent) -> None:
            if event.kind == "fill":
                record(event.data, fill_codec.transfer(event.data))
            elif event.kind == "writeback":
                record(event.data, wb_codec.transfer(event.data))

        pair.add_observer(observe)

    per_program = preset.accesses
    warmup = int(per_program * n * preset.warmup_fraction)
    for i, tagged in enumerate(workload.interleaved(per_program)):
        if i == warmup:
            state["counting"] = True
        state["slot"] = tagged.slot
        pair.access(
            tagged.access.line_addr,
            is_write=tagged.access.is_write,
            write_data=tagged.access.write_data,
        )
    if not state["counting"]:
        raise RuntimeError("multiprogram run never left warm-up")
    return result
