"""Off-chip memory-link simulation (use case ① of Fig 1).

Trace-driven model of the paper's primary configuration: an on-chip
LLC (the *remote* cache) backed by an off-chip DRAM-buffer L4 (the
*home* cache, inclusive, 4× the LLC by default), joined by a 16-bit
9.6GHz link. Every fill and write-back crossing the link is encoded by
the selected scheme:

- ``"raw"`` — no compression (the baseline of every figure);
- ``"cpack"``, ``"bdi"``, ``"cpack128"``, ``"lbe256"``, ``"gzip"``,
  ``"zero"`` — stream link compressors (one independent codec state
  per direction, carried across the stream);
- ``"cable"`` — the full CABLE machinery
  (:class:`repro.core.encoder.CableLinkPair`) with the engine chosen
  by ``cable.engine`` (CABLE+LBE by default, Fig 20 sweeps others).

Results report both the *payload* compression ratio and the
*effective* (flit-quantized) bandwidth ratio the paper plots, plus
the event counts the timing/energy models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import islice
from typing import Dict, List, Optional, Tuple

from repro.cache.hierarchy import InclusivePair, TransferEvent
from repro.cache.setassoc import CacheGeometry, SetAssociativeCache
from repro.compression.registry import make_engine
from repro.core.config import CableConfig
from repro.core.encoder import CableLinkPair, DecompressionError
from repro.fault.plan import FaultPlan, RecoveryPolicy
from repro.state.plan import DurabilityPolicy
from repro.link.channel import LinkModel
from repro.link.toggles import ToggleCounter
from repro.core.payload import Payload, PayloadKind
from repro.obs.registry import METRICS
from repro.obs.tracer import trace
from repro.trace.profiles import BenchmarkProfile, get_profile
from repro.trace.stream import SharedBackingStore, WorkloadModel
from repro.tune.controller import KnobController
from repro.tune.plan import TuningPlan

_MB = 1024 * 1024

#: Stream schemes and whether their codec state spans the stream.
STREAM_SCHEMES = ("zero", "bdi", "cpack", "cpack128", "lbe256", "gzip")


def scale_profile(profile: BenchmarkProfile, ws_scale: float) -> BenchmarkProfile:
    """Shrink/grow a profile's footprint, keeping family density.

    Working-set and family sizes scale together so the expected number
    of resident family members per LLC line stays what it is at full
    size; ``members_per_family`` is preserved (it is a property of the
    program's data structures, not its footprint).
    """
    from dataclasses import replace as dc_replace

    return dc_replace(
        profile,
        working_set_lines=max(64, int(profile.working_set_lines * ws_scale)),
    )


@dataclass(frozen=True)
class MemLinkConfig:
    """Parameters of one memory-link simulation."""

    scheme: str = "cable"
    cable: CableConfig = field(default_factory=CableConfig)
    llc_bytes: int = 1 * _MB
    llc_ways: int = 8
    l4_bytes: int = 4 * _MB
    l4_ways: int = 16
    line_bytes: int = 64
    link: LinkModel = field(default_factory=LinkModel)
    accesses: int = 20_000
    warmup_fraction: float = 0.25
    seed: int = 0
    verify: bool = True
    count_toggles: bool = False
    #: Scales each benchmark's working-set (and family) footprint.
    #: Use it together with smaller caches to run the same
    #: cache-pressure regime quickly (tests set ws_scale =
    #: llc_bytes / 1MB to mirror the paper's 1MB-per-thread ratio).
    ws_scale: float = 1.0
    #: When running scaled-down (llc_bytes below the paper's 1MB per
    #: thread), shrink gzip's stream window proportionally so the
    #: window:LLC dictionary-size ratio — the quantity every
    #: CABLE-vs-gzip comparison hinges on — is preserved. Full-size
    #: runs keep the paper's 32KB window.
    scale_gzip_window: bool = True
    llc_reference_bytes: int = 1 * _MB
    #: Fault injection / link recovery (cable scheme only): when set,
    #: these override the corresponding fields of ``cable`` so sweeps
    #: can vary fault rates without rebuilding the whole CableConfig.
    faults: Optional[FaultPlan] = None
    recovery: Optional[RecoveryPolicy] = None
    #: Durability (cable scheme only): arms snapshot+journal endpoint
    #: state managers on the link; overrides ``cable.durability``.
    durability: Optional[DurabilityPolicy] = None
    #: Scripted endpoint kills: (access_index, side) pairs, applied
    #: right after the given access. Requires a recovery layer (set
    #: ``durability`` or ``faults``/``recovery``).
    crash_points: Tuple[Tuple[int, str], ...] = ()
    #: Look-ahead window (accesses) for the batched signature-
    #: extraction warm (cable scheme only): upcoming lines are peeked
    #: and run through :meth:`SignatureExtractor.warm_batch` in one
    #: vectorized pass before the access loop consumes them. Purely a
    #: throughput knob — extraction is a pure function of line bytes,
    #: so results are byte-identical with it on, off (≤1), or resized.
    batch_lines: int = 64
    #: Online adaptive knob tuning (cable scheme only): a
    #: :class:`repro.tune.plan.TuningPlan` arms a per-benchmark
    #: :class:`~repro.tune.controller.KnobController` when counting
    #: starts (so warmup payloads match untuned runs exactly); the
    #: controller's roll-up lands in ``MemLinkResult.tuning``.
    tuning: Optional[TuningPlan] = None

    def scaled(self, **kwargs) -> "MemLinkConfig":
        return replace(self, **kwargs)


@dataclass
class MemLinkResult:
    """Everything one run produces."""

    benchmark: str
    scheme: str
    accesses: int = 0
    instructions: float = 0.0
    llc_hits: int = 0
    llc_misses: int = 0
    l4_hits: int = 0
    l4_misses: int = 0
    writebacks: int = 0
    transfers: int = 0
    raw_bits: int = 0
    payload_bits: int = 0
    flits: int = 0
    raw_flits: int = 0
    search_data_reads: int = 0
    encodes: int = 0
    decodes: int = 0
    with_references: int = 0
    reference_count: int = 0
    toggles_raw: int = 0
    toggles_compressed: int = 0
    #: Recovery-protocol bits (framing + retransmissions); nonzero only
    #: when the cable scheme runs with a recovery layer.
    overhead_bits: int = 0
    #: Link health + fault-injection counters (see
    #: :class:`repro.link.recovery.LinkHealth`); covers the whole run
    #: including warmup — recovery behaviour has no warmup phase.
    health: Dict[str, int] = field(default_factory=dict)
    per_transfer_bits: List[int] = field(default_factory=list)
    link: LinkModel = field(default_factory=LinkModel)
    #: Knob-controller roll-up (arm pulls, best arm, regret); None
    #: unless the run was configured with a tuning plan.
    tuning: Optional[Dict[str, object]] = None

    @property
    def raw_ratio(self) -> float:
        """Payload (pre-flit) compression ratio."""
        if self.payload_bits == 0:
            return 1.0
        return self.raw_bits / self.payload_bits

    @property
    def effective_ratio(self) -> float:
        """Flit-quantized bandwidth ratio — what the paper plots."""
        if self.flits == 0:
            return 1.0
        return self.raw_flits / self.flits

    @property
    def llc_miss_rate(self) -> float:
        total = self.llc_hits + self.llc_misses
        return self.llc_misses / total if total else 0.0

    @property
    def offchip_bytes(self) -> float:
        """Compressed bytes crossing the link (flit-quantized)."""
        return self.flits * self.link.width_bits / 8

    @property
    def offchip_raw_bytes(self) -> float:
        return self.raw_flits * self.link.width_bits / 8

    @property
    def toggle_reduction(self) -> float:
        if self.toggles_raw == 0:
            return 0.0
        return 1.0 - self.toggles_compressed / self.toggles_raw


class _StreamCodec:
    """A stream link compressor on one direction, with verification."""

    def __init__(self, engine_name: str, verify: bool, window_bytes=None) -> None:
        if window_bytes is not None:
            from repro.compression.lzss import LzssCompressor

            self.encoder = LzssCompressor(window_bytes=window_bytes)
            self.decoder = LzssCompressor(window_bytes=window_bytes)
        else:
            self.encoder = make_engine(engine_name)
            self.decoder = make_engine(engine_name)
        self.verify = verify

    def transfer(self, data: bytes) -> int:
        """Compress one line; returns payload bits (with 1-bit flag)."""
        block = self.encoder.compress(data)
        raw_bits = len(data) * 8
        if block.size_bits >= raw_bits:
            # Sent uncompressed; the decoder window must stay in sync,
            # which engines do by decompressing their own block.
            if self.verify or self.decoder.stateful:
                decoded = self.decoder.decompress(block)
                if self.verify and decoded != data:
                    raise DecompressionError("stream codec round-trip failed")
            return 1 + raw_bits
        if self.verify or self.decoder.stateful:
            decoded = self.decoder.decompress(block)
            if self.verify and decoded != data:
                raise DecompressionError("stream codec round-trip failed")
        return 1 + block.size_bits


class MemLinkSimulation:
    """One benchmark × one scheme on the memory link."""

    def __init__(self, benchmark, config: MemLinkConfig) -> None:
        self.config = config
        profile = benchmark if isinstance(benchmark, BenchmarkProfile) else get_profile(benchmark)
        if config.ws_scale != 1.0:
            profile = scale_profile(profile, config.ws_scale)
        self.profile = profile
        self.workload = WorkloadModel(profile, seed=config.seed)
        self.backing = SharedBackingStore([self.workload])
        self.home = SetAssociativeCache(
            CacheGeometry(config.l4_bytes, config.l4_ways, config.line_bytes),
            name="l4",
        )
        self.remote = SetAssociativeCache(
            CacheGeometry(config.llc_bytes, config.llc_ways, config.line_bytes),
            name="llc",
        )
        self.pair = InclusivePair(
            self.home, self.remote, self.backing.read, self.backing.write
        )
        self.result = MemLinkResult(
            benchmark=profile.name, scheme=config.scheme, link=config.link
        )
        self._line_bits = config.line_bytes * 8
        self._raw_flits_per_line = config.link.flits_for(self._line_bits)
        self._counting = False
        self._toggle_raw: Optional[ToggleCounter] = None
        self._toggle_comp: Optional[ToggleCounter] = None
        if config.count_toggles:
            self._toggle_raw = ToggleCounter(config.link.width_bits)
            self._toggle_comp = ToggleCounter(config.link.width_bits)

        self.cable: Optional[CableLinkPair] = None
        self._fill_codec: Optional[_StreamCodec] = None
        self._wb_codec: Optional[_StreamCodec] = None
        scheme = config.scheme
        if scheme == "cable":
            cable_cfg = config.cable
            overrides = {}
            if config.faults is not None:
                overrides["faults"] = config.faults
            if config.recovery is not None:
                overrides["recovery"] = config.recovery
            if config.durability is not None:
                overrides["durability"] = config.durability
            if config.crash_points and config.recovery is None and (
                config.faults is None or not config.faults.any_faults
            ) and config.durability is None and cable_cfg.recovery is None:
                # Scripted kills need the recovery layer armed even
                # when no probabilistic faults were requested.
                overrides["recovery"] = RecoveryPolicy()
            if overrides:
                cable_cfg = cable_cfg.with_overrides(**overrides)
            self.cable = CableLinkPair(cable_cfg, self.pair, verify=config.verify)
            self.cable.keep_transfers = False
            self.pair.add_observer(self._observe_cable)
        elif scheme == "raw":
            self.pair.add_observer(self._observe_raw)
        elif scheme in STREAM_SCHEMES:
            window = None
            if scheme == "gzip" and config.scale_gzip_window:
                scale = config.llc_bytes / config.llc_reference_bytes
                if scale < 1.0:
                    window = max(1024, int(32 * 1024 * scale))
            self._fill_codec = _StreamCodec(scheme, config.verify, window)
            self._wb_codec = _StreamCodec(scheme, config.verify, window)
            self.pair.add_observer(self._observe_stream)
        else:
            raise ValueError(f"unknown scheme {scheme!r}")

    # ------------------------------------------------------------------
    # Observers (one per scheme family)
    # ------------------------------------------------------------------

    def _record(
        self, payload_bits: int, data: bytes, payload=None, overhead_bits: int = 0
    ) -> None:
        if not self._counting:
            return
        result = self.result
        result.transfers += 1
        result.raw_bits += len(data) * 8
        result.payload_bits += payload_bits
        result.flits += self.config.link.flits_for(payload_bits)
        result.raw_flits += self._raw_flits_per_line
        result.per_transfer_bits.append(payload_bits)
        if overhead_bits:
            # Retransmissions and frame headers cross the wire as their
            # own flits; they cost bandwidth the effective ratio sees.
            result.overhead_bits += overhead_bits
            result.flits += self.config.link.flits_for(overhead_bits)
        if self._toggle_raw is not None:
            self._toggle_raw.record_raw(data)
            if payload is not None:
                self._toggle_comp.record_payload(payload)

    def _observe_raw(self, event: TransferEvent) -> None:
        if event.kind not in ("fill", "writeback"):
            return
        payload = None
        if self._toggle_comp is not None:
            payload = Payload(
                kind=PayloadKind.UNCOMPRESSED,
                line_addr=event.line_addr,
                line_bytes=len(event.data),
                raw=event.data,
            )
        # An uncompressed link carries no flag bit — raw lines exactly.
        self._record(len(event.data) * 8, event.data, payload)

    def _observe_stream(self, event: TransferEvent) -> None:
        if event.kind == "fill":
            codec = self._fill_codec
        elif event.kind == "writeback":
            codec = self._wb_codec
        else:
            return
        bits = codec.transfer(event.data)
        self._record(bits, event.data, None)
        if self._toggle_comp is not None and self._counting:
            # Toggle content for stream schemes: a stateless re-encode
            # (reusing the live encoder would disturb its window). The
            # bit content differs slightly from the stream encoding but
            # has the same entropy character.
            engine = make_engine(self.config.scheme)
            payload = Payload(
                kind=PayloadKind.NO_REFERENCE,
                line_addr=event.line_addr,
                line_bytes=len(event.data),
                block=engine.compress(event.data),
            )
            self._toggle_comp.record_payload(payload)

    def _observe_cable(self, event: TransferEvent) -> None:
        if event.kind not in ("fill", "writeback"):
            return
        # CableLinkPair (registered first) has already produced the
        # payload; pull it from its accounting. Recovery overhead is
        # read as a delta of the cable's running total so retransmitted
        # frames land on the transfer that caused them.
        overhead_total = self.cable.totals["overhead_bits"]
        overhead = overhead_total - self._last_overhead_total
        self._last_overhead_total = overhead_total
        payload_bits = self._last_cable_bits
        self._record(payload_bits, event.data, self._last_cable_payload, overhead)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    _last_cable_bits: int = 0
    _last_cable_payload = None
    _last_overhead_total: int = 0

    def run(self) -> MemLinkResult:
        with trace("sim.run"):
            return self._run()

    def _run(self) -> MemLinkResult:
        config = self.config
        warmup = int(config.accesses * config.warmup_fraction)
        if self.cable is not None:
            # Intercept cable accounting to know each payload's size.
            original_account = self.cable._account

            def hooked(direction, event, payload, search):
                self._last_cable_bits = payload.size_bits
                self._last_cable_payload = payload
                original_account(direction, event, payload, search)

            self.cable._account = hooked
        crash_at: Dict[int, List[str]] = {}
        for index, side in config.crash_points:
            crash_at.setdefault(index, []).append(side)
        accesses = self.workload.accesses(config.accesses)
        if self.cable is not None and config.batch_lines > 1:
            accesses = self._lookahead_blocks(accesses, config.batch_lines)
        tuner: Optional[KnobController] = None
        for i, access in enumerate(accesses):
            if i == warmup:
                self._start_counting()
                if self.cable is not None and config.tuning is not None:
                    # Armed exactly at counting start: warmup payloads
                    # stay byte-identical to an untuned run.
                    tuner = KnobController(
                        self.cable,
                        config.tuning,
                        seed_context=(self.profile.name, config.seed),
                    )
            self.pair.access(
                access.line_addr,
                is_write=access.is_write,
                write_data=access.write_data,
            )
            if tuner is not None:
                tuner.on_access()
            if i in crash_at and self.cable is not None:
                for side in crash_at[i]:
                    self.cable.crash_endpoint(side)
        if tuner is not None:
            tuner.finish()
            self.result.tuning = tuner.rollup()
        if self.cable is not None:
            self.cable.drain_resync()
        self._finish()
        return self.result

    def _lookahead_blocks(self, accesses, block: int):
        """Yield accesses unchanged, batch-warming extraction ahead.

        For each upcoming block the *likely* link contents are
        prefetched through the extractor memo in one vectorized pass:
        a write access's post-write line (indexed at the home side
        later) and, for reads, the backing copy of the line (what a
        fill carries unless a dirtier home copy exists). The warm is a
        pure memoization — a mispredicted line wastes a memo slot but
        can never change a payload, because extraction depends only on
        the line bytes, not on encoder state.
        """
        extractor = self.cable.home_encoder.extractor
        peek = self.backing.peek
        while True:
            chunk = list(islice(accesses, block))
            if not chunk:
                return
            extractor.warm_batch(
                [
                    access.write_data
                    if access.write_data is not None
                    else peek(access.line_addr)
                    for access in chunk
                ]
            )
            yield from chunk

    def _start_counting(self) -> None:
        self._counting = True
        self._hits0 = self.pair.stats["remote_hits"]
        self._misses0 = self.pair.stats["remote_misses"]
        self._l4h0 = self.pair.stats["home_hits"]
        self._l4m0 = self.pair.stats["home_misses"]
        self._wb0 = self.pair.stats["writebacks"]
        if self.cable is not None:
            self._reads0 = self.home.stats["data_reads"] + self.remote.stats["data_reads"]
            self._enc0 = self.cable.home_encoder.stats["encodes"]
            self._dec0 = self.cable.remote_decoder.stats["decodes"]
            self._wref0 = self.cable.home_encoder.stats["with_references"]
            self._refn0 = self.cable.home_encoder.stats["reference_count"]

    def _finish(self) -> None:
        if not self._counting:
            # Tiny runs may never leave warmup; count everything then.
            self._start_counting()
            self._hits0 = self._misses0 = self._l4h0 = self._l4m0 = self._wb0 = 0
            if self.cable is not None:
                self._reads0 = self._enc0 = self._dec0 = self._wref0 = self._refn0 = 0
        result = self.result
        stats = self.pair.stats
        result.llc_hits = stats["remote_hits"] - self._hits0
        result.llc_misses = stats["remote_misses"] - self._misses0
        result.l4_hits = stats["home_hits"] - self._l4h0
        result.l4_misses = stats["home_misses"] - self._l4m0
        result.writebacks = stats["writebacks"] - self._wb0
        result.accesses = result.llc_hits + result.llc_misses
        result.instructions = result.accesses / self.profile.llc_apki * 1000.0
        if self.cable is not None:
            result.search_data_reads = (
                self.home.stats["data_reads"]
                + self.remote.stats["data_reads"]
                - self._reads0
            )
            result.encodes = self.cable.home_encoder.stats["encodes"] - self._enc0
            result.decodes = self.cable.remote_decoder.stats["decodes"] - self._dec0
            result.with_references = (
                self.cable.home_encoder.stats["with_references"] - self._wref0
            )
            result.reference_count = (
                self.cable.home_encoder.stats["reference_count"] - self._refn0
            )
            if self.cable.recovery_layer is not None:
                result.health = self.cable.health
        else:
            result.encodes = result.transfers
            result.decodes = result.transfers
        if self._toggle_raw is not None:
            result.toggles_raw = self._toggle_raw.toggles
            result.toggles_compressed = self._toggle_comp.toggles
        if METRICS.enabled:
            # End-of-run roll-up: gauges mirror the run's headline
            # numbers onto the same scrape surface as the stage
            # histograms and link counters.
            METRICS.gauge("sim.accesses").set(result.accesses)
            METRICS.gauge("sim.transfers").set(result.transfers)
            METRICS.gauge("sim.flits").set(result.flits)
            METRICS.gauge("sim.raw_flits").set(result.raw_flits)
            METRICS.gauge("sim.payload_bits").set(result.payload_bits)
            METRICS.gauge("sim.raw_bits").set(result.raw_bits)


def run_memlink(benchmark, config: Optional[MemLinkConfig] = None, **overrides) -> MemLinkResult:
    """Convenience wrapper: simulate one benchmark on the memory link."""
    config = config or MemLinkConfig()
    if overrides:
        config = config.scaled(**overrides)
    return MemLinkSimulation(benchmark, config).run()


def run_suite(
    benchmarks,
    config: Optional[MemLinkConfig] = None,
    schemes=("cable",),
    **overrides,
) -> Dict[str, Dict[str, MemLinkResult]]:
    """Simulate a benchmark × scheme grid; results[benchmark][scheme]."""
    config = config or MemLinkConfig()
    if overrides:
        config = config.scaled(**overrides)
    results: Dict[str, Dict[str, MemLinkResult]] = {}
    for benchmark in benchmarks:
        row: Dict[str, MemLinkResult] = {}
        for scheme in schemes:
            row[scheme] = run_memlink(benchmark, config.scaled(scheme=scheme))
        results[benchmark] = row
    return results
