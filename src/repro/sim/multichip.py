"""Multi-chip coherence-link simulation (use case ② of Fig 1, Fig 13).

A cache-coherent NUMA system of N chips with round-robin page
interleaving: every page has a *home* node, and a thread on node 0
caches remote data through N−1 point-to-point links, each with its
own CABLE pipeline (one hash table pair + one WMT per link, §V-B).

Modelling choice (documented in DESIGN.md): node 0's LLC is
represented as per-home partitions — round-robin interleaving spreads
lines evenly across homes, so a 1/N partition per link approximates
the shared physical LLC while letting each link keep the
:class:`~repro.cache.hierarchy.InclusivePair` invariants exact.
Accesses to locally-homed pages (1/N of them) never cross a link and
are excluded, exactly as in the paper's per-link compression ratios.

Differences from the memory link that the paper calls out and that
emerge here: more dirty-line transfers (write-backs of modified data
to remote homes), quarter-sized hash tables, and full-sized WMTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.cache.hierarchy import InclusivePair, TransferEvent
from repro.cache.setassoc import CacheGeometry, SetAssociativeCache
from repro.core.config import CableConfig
from repro.core.encoder import CableLinkPair
from repro.link.channel import LinkModel
from repro.sim.memlink import MemLinkResult, scale_profile
from repro.trace.profiles import BenchmarkProfile, get_profile
from repro.trace.stream import SharedBackingStore, WorkloadModel

_MB = 1024 * 1024

#: Lines per page (4KB pages of 64B lines).
PAGE_LINES = 64


@dataclass(frozen=True)
class MultiChipConfig:
    """Parameters of one coherence-link simulation."""

    #: "cable" or any stream scheme from memlink.STREAM_SCHEMES / "raw".
    scheme: str = "cable"
    nodes: int = 4
    #: Per-node LLC; the requester's share per link is llc_bytes/nodes.
    llc_bytes: int = 1 * _MB
    llc_ways: int = 8
    #: Home-side capacity backing each link (home LLC + memory-side
    #: room); 4× the remote share keeps the same pressure ratio as the
    #: memory link.
    home_ratio: int = 4
    line_bytes: int = 64
    cable: CableConfig = field(
        default_factory=lambda: CableConfig(hash_table_scale=0.25)
    )
    link: LinkModel = field(default_factory=LinkModel)
    accesses: int = 20_000
    warmup_fraction: float = 0.25
    seed: int = 0
    verify: bool = True
    ws_scale: float = 1.0
    #: Coherence traffic carries more dirty lines (§VI-B); scale the
    #: profile's write fraction up, capped at 0.6.
    write_boost: float = 1.5

    def scaled(self, **kwargs) -> "MultiChipConfig":
        return replace(self, **kwargs)


class MultiChipSimulation:
    """One benchmark on an N-chip NUMA system, measuring all links."""

    def __init__(self, benchmark, config: MultiChipConfig) -> None:
        self.config = config
        profile = (
            benchmark
            if isinstance(benchmark, BenchmarkProfile)
            else get_profile(benchmark)
        )
        if config.ws_scale != 1.0:
            profile = scale_profile(profile, config.ws_scale)
        profile = replace(
            profile,
            write_fraction=min(0.6, profile.write_fraction * config.write_boost),
        )
        self.profile = profile
        self.workload = WorkloadModel(profile, seed=config.seed)
        self.backing = SharedBackingStore([self.workload])

        remote_share = config.llc_bytes // config.nodes
        home_bytes = remote_share * config.home_ratio
        self.links: List[Optional[CableLinkPair]] = []
        self.pairs: List[InclusivePair] = []
        self._codecs = []
        for node in range(1, config.nodes):
            remote = SetAssociativeCache(
                CacheGeometry(remote_share, config.llc_ways, config.line_bytes),
                name=f"llc0-part{node}",
            )
            home = SetAssociativeCache(
                CacheGeometry(home_bytes, config.llc_ways, config.line_bytes),
                name=f"home{node}",
            )
            pair = InclusivePair(home, remote, self.backing.read, self.backing.write)
            self.pairs.append(pair)
            if config.scheme == "cable":
                link = CableLinkPair(config.cable, pair, verify=config.verify)
                link.keep_transfers = False
                self.links.append(link)
            else:
                self.links.append(None)
        self.result = MemLinkResult(
            benchmark=profile.name,
            scheme=f"{config.scheme}-coherence",
            link=config.link,
        )

    def _home_of(self, line_addr: int) -> int:
        return (line_addr // PAGE_LINES) % self.config.nodes

    def run(self) -> MemLinkResult:
        config = self.config
        warmup = int(config.accesses * config.warmup_fraction)
        counting = [False]
        result = self.result

        def record(direction: str, data: bytes, payload_bits: int) -> None:
            if not counting[0]:
                return
            result.transfers += 1
            if direction == "writeback":
                result.writebacks += 1
            result.payload_bits += payload_bits
            result.raw_bits += len(data) * 8
            result.flits += config.link.flits_for(payload_bits)
            result.raw_flits += config.link.flits_for(len(data) * 8)
            result.per_transfer_bits.append(payload_bits)

        def hook_cable(link: CableLinkPair) -> None:
            original = link._account

            def hooked(direction, event, payload, search):
                original(direction, event, payload, search)
                record(direction, event.data, payload.size_bits)

            link._account = hooked

        def hook_stream(pair: InclusivePair) -> None:
            from repro.sim.memlink import _StreamCodec

            if config.scheme == "raw":
                def observe(event: TransferEvent) -> None:
                    if event.kind in ("fill", "writeback"):
                        record(event.kind, event.data, len(event.data) * 8)
            else:
                # Scale gzip's stream window with the cache scale, as
                # the memory-link simulation does, to preserve the
                # window:cache dictionary-size ratio at reduced scale.
                window = None
                if config.scheme == "gzip":
                    cache_scale = config.llc_bytes / (4 * _MB)
                    if cache_scale < 1.0:
                        window = max(1024, int(32 * 1024 * cache_scale))
                fill_codec = _StreamCodec(config.scheme, config.verify, window)
                wb_codec = _StreamCodec(config.scheme, config.verify, window)

                def observe(event: TransferEvent) -> None:
                    if event.kind == "fill":
                        record("fill", event.data, fill_codec.transfer(event.data))
                    elif event.kind == "writeback":
                        record(
                            "writeback", event.data, wb_codec.transfer(event.data)
                        )

            pair.add_observer(observe)

        for pair, link in zip(self.pairs, self.links):
            if link is not None:
                hook_cable(link)
            else:
                hook_stream(pair)

        base_stats = None
        for i, access in enumerate(self.workload.accesses(config.accesses)):
            if i == warmup:
                counting[0] = True
                base_stats = [dict(pair.stats) for pair in self.pairs]
            home = self._home_of(access.line_addr)
            if home == 0:
                continue  # locally homed; never crosses a link
            self.pairs[home - 1].access(
                access.line_addr,
                is_write=access.is_write,
                write_data=access.write_data,
            )
        if base_stats is None:
            counting[0] = True
            base_stats = [{k: 0 for k in pair.stats} for pair in self.pairs]
        for pair, base in zip(self.pairs, base_stats):
            result.llc_hits += pair.stats["remote_hits"] - base["remote_hits"]
            result.llc_misses += pair.stats["remote_misses"] - base["remote_misses"]
            result.l4_hits += pair.stats["home_hits"] - base["home_hits"]
            result.l4_misses += pair.stats["home_misses"] - base["home_misses"]
        result.accesses = result.llc_hits + result.llc_misses
        result.instructions = result.accesses / self.profile.llc_apki * 1000.0
        return result


def run_multichip(benchmark, config: Optional[MultiChipConfig] = None, **overrides) -> MemLinkResult:
    """Simulate one benchmark on the coherence links."""
    config = config or MultiChipConfig()
    if overrides:
        config = config.scaled(**overrides)
    return MultiChipSimulation(benchmark, config).run()
