"""Many-thread throughput model (Fig 14).

The paper's argument: manycores tolerate latency but drown in
bandwidth. Each thread runs the single-thread workload; all threads
share the quad-channel off-chip link (76.8GB/s). Threads are split
into groups of eight that share bandwidth *competitively* — the
statistical-multiplexing refinement of §VI-A — so one memory hog can
soak up a stalled neighbour's headroom within its group.

Per thread: ``time = max(compute_time, group_traffic / group_bw)``
with compute_time from the timing model (codec latency included) and
traffic from the memory-link simulation (compressed bytes). System
throughput is total instructions per second; Fig 14 plots the speedup
over the uncompressed link at the same thread count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.sim.memlink import MemLinkResult
from repro.sim.timing import TimingModel

#: Table IV: quad-channel 16-bit @ 9.6GHz for the throughput studies.
QUAD_CHANNEL_BW = 4 * 19.2e9
GROUP_SIZE = 8


@dataclass(frozen=True)
class ThroughputModel:
    """Bandwidth-sharing throughput estimator."""

    total_bandwidth: float = QUAD_CHANNEL_BW
    group_size: int = GROUP_SIZE
    timing: TimingModel = TimingModel()

    def thread_time(
        self, result: MemLinkResult, threads: int, compressed: bool = True
    ) -> float:
        """Seconds for one thread's simulated region at *threads* load.

        All threads run replicas of the same workload (the paper's
        Fig 14a setup), so within a group every member has the same
        demand and the group's bandwidth divides evenly; the group
        structure still matters for mixed workloads (used by the
        multiprogram studies).
        """
        compute = self.timing.execution_cycles(
            result, compressed=compressed
        ) / self.timing.core_hz
        bw_per_thread = self.total_bandwidth / threads
        bytes_moved = (
            result.offchip_bytes if compressed else result.offchip_raw_bytes
        )
        transfer = bytes_moved / bw_per_thread
        return max(compute, transfer)

    def throughput(
        self, result: MemLinkResult, threads: int, compressed: bool = True
    ) -> float:
        """Instructions per second across all threads."""
        time = self.thread_time(result, threads, compressed=compressed)
        if time <= 0:
            return 0.0
        return threads * result.instructions / time

    def speedup(self, compressed_result: MemLinkResult, raw_result: MemLinkResult, threads: int) -> float:
        """Fig 14's metric: throughput vs the uncompressed link.

        ``raw_result`` is the same benchmark simulated with
        ``scheme="raw"`` (traffic identical in lines, byte volume
        uncompressed)."""
        base = self.throughput(raw_result, threads, compressed=False)
        comp = self.throughput(compressed_result, threads, compressed=True)
        if base == 0:
            return 1.0
        return comp / base

    def speedup_curve(
        self,
        compressed_result: MemLinkResult,
        raw_result: MemLinkResult,
        thread_counts=(256, 512, 1024, 2048),
    ) -> Dict[int, float]:
        """Fig 14b: speedup across thread counts."""
        return {
            n: self.speedup(compressed_result, raw_result, n)
            for n in thread_counts
        }
