"""Single-thread latency model (Table IV, Fig 17).

The paper's cores are in-order, 1 CPI for non-memory work, with the
memory subsystem latencies of Table IV. This model turns a
:class:`~repro.sim.memlink.MemLinkResult` into execution cycles:

``cycles = instructions × 1
         + LLC accesses × 30
         + LLC misses × (link setup + flit transfer + L4 access
                          [+ DRAM on L4 miss] [+ comp/decomp latency])``

Compression adds its per-transfer latency on the critical path of
every off-chip fill and *removes* flit-transfer time proportional to
the compression it achieves. Fig 17 is the ratio of compressed to
uncompressed execution time; the on/off controller of §VI-D
(:mod:`repro.sim.control`) removes the penalty when bandwidth is not
scarce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.memlink import MemLinkResult

#: Compression/decompression latencies in core cycles (Table IV).
COMPRESSION_LATENCIES = {
    "raw": (0, 0),
    "zero": (1, 1),
    "bdi": (1, 1),
    "cpack": (8, 8),
    "cpack128": (8, 8),
    "lbe256": (8, 8),
    "gzip": (64, 32),
    "cable": (32, 16),  # compress includes the 16-cycle search
}


@dataclass(frozen=True)
class TimingModel:
    """Latency parameters (defaults = Table IV at a 2GHz core)."""

    core_hz: float = 2.0e9
    llc_cycles: int = 30
    l4_cycles: int = 30
    link_setup_ns: float = 20.0
    link_hz: float = 9.6e9
    link_width_bits: int = 16
    dram_cycles: int = 60  # controller + DDR3 9-9-9 at 2GHz
    dram_link_hz: float = 1.6e9
    dram_link_width_bits: int = 64
    #: Memory-level parallelism: outstanding misses overlap, so only
    #: 1/mlp of each miss's latency lands on the critical path (even
    #: in-order cores have non-blocking caches and hit-under-miss).
    mlp: float = 4.0
    #: Fraction of codec latency actually exposed: the search overlaps
    #: the data-array/DRAM fetch pipeline and DIFF decode streams with
    #: the arriving flits, hiding about half of the worst-case cycles.
    codec_exposure: float = 0.5

    @property
    def link_setup_cycles(self) -> float:
        return self.link_setup_ns * 1e-9 * self.core_hz

    def link_transfer_cycles(self, bits: float) -> float:
        """Core cycles to move *bits* across the off-chip link."""
        flits = -(-bits // self.link_width_bits) if bits else 0
        return flits / self.link_hz * self.core_hz

    def dram_transfer_cycles(self, bits: float) -> float:
        beats = -(-bits // self.dram_link_width_bits) if bits else 0
        return beats / self.dram_link_hz * self.core_hz

    @classmethod
    def with_ddr3(cls, **overrides) -> "TimingModel":
        """Derive DRAM latency from the DDR3 device model instead of
        the default constant: closed-page access (27.5ns) plus queueing
        headroom, in core cycles."""
        from repro.memory.dram import Ddr3Timing

        timing = Ddr3Timing()
        core_hz = overrides.get("core_hz", cls.core_hz)
        dram_cycles = int(round(timing.access_ns * 1e-9 * core_hz)) + 5
        return cls(dram_cycles=dram_cycles, **overrides)

    # ------------------------------------------------------------------

    def execution_cycles(
        self,
        result: MemLinkResult,
        scheme: str = None,
        compressed: bool = True,
    ) -> float:
        """Total core cycles for the simulated region.

        ``compressed=False`` evaluates the same run as if the link
        carried raw lines with no codec latency — the Fig 17 baseline.
        """
        scheme = scheme or result.scheme
        comp, decomp = COMPRESSION_LATENCIES.get(scheme, (0, 0))
        line_bits = 64 * 8

        cycles = result.instructions  # 1 CPI non-memory + L1/L2 folded in
        memory_cycles = (result.llc_hits + result.llc_misses) * self.llc_cycles

        misses = result.llc_misses
        if misses:
            if compressed and result.transfers:
                fill_bits = result.payload_bits / result.transfers
                codec_cycles = (comp + decomp) * self.codec_exposure
            else:
                fill_bits = line_bits
                codec_cycles = 0
            per_miss = (
                self.link_setup_cycles
                + self.link_transfer_cycles(fill_bits)
                + self.l4_cycles
                + codec_cycles
            )
            memory_cycles += misses * per_miss
        if result.l4_misses:
            memory_cycles += result.l4_misses * (
                self.dram_cycles + self.dram_transfer_cycles(line_bits)
            )
        return cycles + memory_cycles / self.mlp

    def degradation(self, result: MemLinkResult, scheme: str = None) -> float:
        """Fig 17's single-thread slowdown: time_comp / time_raw − 1.

        Positive when codec latency outweighs the (latency-wise small)
        transfer savings — the expected case for a single thread with
        abundant bandwidth.
        """
        base = self.execution_cycles(result, scheme="raw", compressed=False)
        comp = self.execution_cycles(result, scheme=scheme, compressed=True)
        return comp / base - 1.0

    def execution_seconds(self, result: MemLinkResult, **kwargs) -> float:
        return self.execution_cycles(result, **kwargs) / self.core_hz
