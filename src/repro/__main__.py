"""Command-line entry point: regenerate the paper's tables/figures.

Usage::

    python -m repro list
    python -m repro fig12 --scale smoke
    python -m repro fig12 --scale default --benchmarks gcc dealII mcf
    python -m repro tables
    python -m repro all --scale smoke

``--scale`` is one of the presets in
:data:`repro.experiments.base.SCALES`; see DESIGN.md's experiment
index for what each figure shows.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import List, Optional

#: Experiment id → (module, supports-benchmarks-arg).
EXPERIMENTS = {
    "fig03": ("repro.experiments.fig03", True),
    "fig11": ("repro.experiments.fig11", True),
    "fig12": ("repro.experiments.fig12", True),
    "fig13": ("repro.experiments.fig13", True),
    "fig14": ("repro.experiments.fig14", True),
    "fig15": ("repro.experiments.fig15", True),
    "fig16": ("repro.experiments.fig16", False),
    "fig17": ("repro.experiments.fig17", True),
    "fig18": ("repro.experiments.fig18", True),
    "fig19": ("repro.experiments.fig19", True),
    "fig20": ("repro.experiments.fig20", True),
    "fig21": ("repro.experiments.fig21", True),
    "fig22": ("repro.experiments.fig22", True),
    "fig23": ("repro.experiments.fig23", True),
    "toggles": ("repro.experiments.toggles", True),
    "control": ("repro.experiments.control", True),
    "ablations": ("repro.experiments.ablations", True),
    "resilience": ("repro.experiments.resilience", True),
    "serving": ("repro.experiments.serving", False),
    "failover": ("repro.experiments.failover", False),
    "cluster": ("repro.experiments.cluster", False),
    "cluster_scaling": ("repro.experiments.cluster_scaling", False),
    "tiers": ("repro.experiments.tiers", True),
}


def run_tables() -> None:
    from repro.experiments import tables

    for factory in (
        tables.table_ii,
        tables.table_iii_result,
        tables.table_iv,
        tables.table_v,
        tables.table_vi,
    ):
        print(factory().render())
        print()


def run_experiment(name: str, scale: str, benchmarks: Optional[List[str]]) -> None:
    module_name, takes_benchmarks = EXPERIMENTS[name]
    module = importlib.import_module(module_name)
    kwargs = {"scale": scale}
    if benchmarks and takes_benchmarks:
        kwargs["benchmarks"] = benchmarks
    print(module.run(**kwargs).render())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate CABLE's evaluation tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (figNN/toggles/control/ablations), "
        "'tables', 'list', or 'all'",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=("smoke", "default", "paper"),
        help="fidelity/runtime preset (default: default)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        metavar="BENCH",
        help="restrict to these SPEC2006 benchmarks",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("experiments:", ", ".join(sorted(EXPERIMENTS)), "+ tables")
        return 0
    if args.experiment == "tables":
        run_tables()
        return 0
    if args.experiment == "all":
        run_tables()
        for name in sorted(EXPERIMENTS):
            run_experiment(name, args.scale, args.benchmarks)
            print()
        return 0
    if args.experiment not in EXPERIMENTS:
        parser.error(
            f"unknown experiment {args.experiment!r}; try 'list'"
        )
    run_experiment(args.experiment, args.scale, args.benchmarks)
    return 0


if __name__ == "__main__":
    sys.exit(main())
