"""Synthetic SPEC2006-like workload substrate (see DESIGN.md §2)."""

from repro.trace.profiles import (
    SPEC2006,
    ALL_BENCHMARKS,
    EXTRA_PROFILES,
    NON_TRIVIAL,
    TIER_BENCHMARKS,
    ZERO_DOMINANT,
    BenchmarkProfile,
    get_profile,
)
from repro.trace.stream import Access, WorkloadModel, SharedBackingStore
from repro.trace.mixes import (
    TABLE_VI_MIXES,
    MultiprogramWorkload,
    TaggedAccess,
)
from repro.trace.patterns import PATTERN_GENERATORS

__all__ = [
    "SPEC2006",
    "ALL_BENCHMARKS",
    "EXTRA_PROFILES",
    "TIER_BENCHMARKS",
    "NON_TRIVIAL",
    "ZERO_DOMINANT",
    "BenchmarkProfile",
    "get_profile",
    "Access",
    "WorkloadModel",
    "SharedBackingStore",
    "TABLE_VI_MIXES",
    "MultiprogramWorkload",
    "TaggedAccess",
    "PATTERN_GENERATORS",
]
