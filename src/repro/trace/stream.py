"""Access-stream and memory-content generation.

A :class:`WorkloadModel` turns a :class:`BenchmarkProfile` into:

- a deterministic *initial memory image*: line content is a pure
  function of (seed, benchmark, address), so re-reading an address
  after eviction reproduces identical bytes;
- an *access stream* of (line address, read/write, write data)
  records with profile-shaped locality and reuse distances;
- a *logical memory view* that evolves under the stream's own writes.

The access stream interleaves sequential runs (probability
``locality`` of continuing at the next line) with power-law random
jumps (``reuse_skew`` concentrating re-use on a hot region), which is
what determines whether similar lines recur within gzip's 32KB stream
window or only within the LLC-sized dictionary CABLE sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.trace.patterns import (
    PATTERN_GENERATORS,
    family_member,
    mutate_line,
)
from repro.trace.profiles import BenchmarkProfile, get_profile
from repro.util.rng import make_rng, stable_hash64

_U64 = float(1 << 64)


@dataclass(frozen=True)
class Access:
    """One memory access at cache-line granularity."""

    line_addr: int
    is_write: bool = False
    write_data: Optional[bytes] = None


class WorkloadModel:
    """Deterministic synthetic workload for one benchmark instance.

    ``addr_base`` offsets the whole footprint, letting multiprogram
    studies give each program a disjoint address space while sharing
    one backing store and cache hierarchy.
    """

    def __init__(
        self,
        profile_or_name,
        seed: int = 0,
        addr_base: int = 0,
        copy_id: int = 0,
    ) -> None:
        if isinstance(profile_or_name, str):
            profile_or_name = get_profile(profile_or_name)
        self.profile: BenchmarkProfile = profile_or_name
        self.seed = seed
        self.addr_base = addr_base
        #: Distinguishes replicated copies of the same program
        #: (SPECrate-style, Fig 15): same data-structure archetypes,
        #: different mutation streams.
        self.copy_id = copy_id
        self._archetypes: Dict[int, bytes] = {}
        self._written: Dict[int, bytes] = {}

    # ------------------------------------------------------------------
    # Memory content
    # ------------------------------------------------------------------

    def _archetype(self, family: int) -> bytes:
        """Family archetypes depend only on (seed, benchmark, family) —
        NOT on copy_id — so replicated copies of a program share their
        data-structure layouts, the effect Fig 15 measures."""
        cached = self._archetypes.get(family)
        if cached is None:
            rng = make_rng(self.seed, self.profile.name, "archetype", family)
            generator = self._pick_pattern(rng.random())
            cached = generator(rng)
            self._archetypes[family] = cached
        return cached

    def _pick_pattern(self, point: float):
        weights = self.profile.pattern_weights
        total = sum(weights.values())
        acc = 0.0
        for name, weight in weights.items():
            acc += weight / total
            if point < acc:
                return PATTERN_GENERATORS[name]
        return PATTERN_GENERATORS[next(iter(weights))]

    def initial_content(self, line_addr: int) -> bytes:
        """The line's content before any write (pure function).

        Family membership is decided per *cluster* of
        ``profile.cluster_lines`` contiguous lines, so one family's
        members form several scattered runs of similar lines — arrays
        of like objects locally, duplicated structures globally."""
        offset = line_addr - self.addr_base
        cluster = offset // self.profile.cluster_lines
        h = stable_hash64(self.seed, self.profile.name, "cluster", cluster)
        if (h / _U64) < self.profile.family_weight:
            family = h % self.profile.family_count
            return family_member(
                self._archetype(family),
                stable_hash64(self.seed, self.profile.name, self.copy_id),
                offset,
                self.profile.mutation_words,
                self.profile.shift_prob,
            )
        rng = make_rng(self.seed, self.profile.name, self.copy_id, "pline", offset)
        return self._pick_pattern(rng.random())(rng)

    def current_content(self, line_addr: int) -> bytes:
        """The program's logical view (initial content + its writes)."""
        return self._written.get(line_addr, None) or self.initial_content(line_addr)

    def owns(self, line_addr: int) -> bool:
        offset = line_addr - self.addr_base
        return 0 <= offset < self.profile.working_set_lines

    # ------------------------------------------------------------------
    # Access stream
    # ------------------------------------------------------------------

    def accesses(self, count: int, stream_id: int = 0, phases: int = 1) -> Iterator[Access]:
        """Generate *count* accesses (deterministic per stream_id).

        ``phases`` splits the stream into SimPoint-style program
        phases (the paper simulates 10 per benchmark): each phase
        focuses its non-sequential reuse on a different, rotating
        window of the working set, so compression behaviour varies
        over time — the effect the methodology retrospective the paper
        cites [86] warns single-trace studies about. The default of 1
        keeps the stationary behaviour the calibrated profiles assume.
        """
        profile = self.profile
        rng = make_rng(self.seed, profile.name, self.copy_id, "stream", stream_id)
        ws = profile.working_set_lines
        pos = rng.randrange(ws)
        phases = max(1, phases)
        phase_length = max(1, count // phases)
        for index in range(count):
            phase = min(index // phase_length, phases - 1)
            if phases > 1:
                # Each phase's hot window covers half the footprint,
                # rotated per phase; sequential runs may leave it.
                window = ws // 2
                window_base = (phase * ws) // phases
            else:
                window = ws
                window_base = 0
            if rng.random() < profile.locality:
                pos = (pos + 1) % ws
            else:
                jump = int(window * (rng.random() ** profile.reuse_skew)) % window
                pos = (window_base + jump) % ws
            addr = self.addr_base + pos
            if rng.random() < profile.write_fraction:
                if rng.random() < 0.7:
                    # Object rewrite: fresh values laid out like the
                    # original — bounded drift from the family
                    # archetype, as when a program updates an object's
                    # fields in place.
                    new_data = mutate_line(
                        self.initial_content(addr),
                        rng,
                        rng.randint(0, max(1, profile.mutation_words)),
                    )
                else:
                    # Incremental field edit on the current value.
                    new_data = mutate_line(self.current_content(addr), rng, 1)
                self._written[addr] = new_data
                yield Access(addr, is_write=True, write_data=new_data)
            else:
                yield Access(addr, is_write=False)


class SharedBackingStore:
    """Backing memory shared by one or more workloads.

    Reads fall through to the owning workload's initial content until
    a write-back lands; the cache system's write-backs are the only
    writers (the workload's logical view evolves separately — data
    reaches the backing store only when fully evicted, as in real
    memory)."""

    def __init__(self, workloads) -> None:
        self.workloads = list(workloads)
        self._data: Dict[int, bytes] = {}
        self.stats = {"reads": 0, "writes": 0}

    def _owner(self, line_addr: int) -> WorkloadModel:
        for workload in self.workloads:
            if workload.owns(line_addr):
                return workload
        raise KeyError(f"no workload owns line address {line_addr:#x}")

    def read(self, line_addr: int) -> bytes:
        self.stats["reads"] += 1
        return self.peek(line_addr)

    def peek(self, line_addr: int) -> bytes:
        """:meth:`read` without the stats bump.

        The memory-link simulation's look-ahead warm peeks upcoming
        lines to prefetch signature extraction; it must not perturb the
        backing-store accounting the benchmarks report."""
        cached = self._data.get(line_addr)
        if cached is not None:
            return cached
        return self._owner(line_addr).initial_content(line_addr)

    def write(self, line_addr: int, data: bytes) -> None:
        self.stats["writes"] += 1
        self._data[line_addr] = data
