"""Multiprogram workload composition (§VI-C).

Two study shapes from the paper:

- **Cooperative** (Fig 15): four copies of the same program, SPECrate
  style — same archetype data structures, independently mutated and
  independently scheduled, so a big shared dictionary finds
  cross-copy similarity.
- **Destructive** (Fig 16 / Table VI): mixes of unrelated programs
  whose interleaved traffic pollutes any stream-shared dictionary.

Programs are interleaved round-robin with deterministic jitter, and
every access is tagged with its program slot so per-program
compression ratios can be measured separately, as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.trace.profiles import get_profile
from repro.trace.stream import Access, SharedBackingStore, WorkloadModel
from repro.util.rng import make_rng

#: Table VI — the paper's randomly chosen destructive mixes.
TABLE_VI_MIXES: Dict[str, Tuple[str, str, str, str]] = {
    "MIX0": ("h264ref", "soplex", "hmmer", "bzip2"),
    "MIX1": ("gcc", "gobmk", "gcc", "soplex"),
    "MIX2": ("bzip2", "lbm", "gobmk", "perlbench"),
    "MIX3": ("gcc", "bzip2", "tonto", "cactusADM"),
    "MIX4": ("perlbench", "wrf", "gobmk", "gcc"),
    "MIX5": ("omnetpp", "bzip2", "bzip2", "gobmk"),
    "MIX6": ("gcc", "tonto", "gamess", "cactusADM"),
    "MIX7": ("gcc", "wrf", "gcc", "bzip2"),
}

#: Address-space stride between programs (lines). Large enough that no
#: realistic working set overlaps its neighbour.
PROGRAM_STRIDE_LINES = 1 << 24


@dataclass(frozen=True)
class TaggedAccess:
    """An access plus the program slot that issued it."""

    slot: int
    access: Access


class MultiprogramWorkload:
    """N programs with disjoint address spaces on one shared link."""

    def __init__(
        self,
        benchmark_names: Tuple[str, ...],
        seed: int = 0,
        replicate: bool = False,
    ) -> None:
        """``replicate`` marks SPECrate-style runs: all slots share
        archetypes (copies of one program) but mutate independently."""
        self.names = tuple(benchmark_names)
        self.workloads: List[WorkloadModel] = []
        for slot, name in enumerate(self.names):
            profile = get_profile(name)
            self.workloads.append(
                WorkloadModel(
                    profile,
                    seed=seed,
                    addr_base=slot * PROGRAM_STRIDE_LINES,
                    copy_id=slot if replicate else 0,
                )
            )
        self.backing = SharedBackingStore(self.workloads)
        self.seed = seed

    @classmethod
    def replicated(cls, benchmark: str, copies: int = 4, seed: int = 0):
        """Fig 15's Multi4: *copies* instances of one program."""
        return cls((benchmark,) * copies, seed=seed, replicate=True)

    @classmethod
    def table_vi(cls, mix: str, seed: int = 0):
        """A Table VI destructive mix by name (``"MIX0"``–``"MIX7"``)."""
        try:
            names = TABLE_VI_MIXES[mix]
        except KeyError:
            known = ", ".join(sorted(TABLE_VI_MIXES))
            raise ValueError(f"unknown mix {mix!r}; known: {known}") from None
        return cls(names, seed=seed)

    def slot_of(self, line_addr: int) -> int:
        return line_addr // PROGRAM_STRIDE_LINES

    def interleaved(self, per_program: int) -> Iterator[TaggedAccess]:
        """Round-robin interleave with deterministic jitter.

        Programs desynchronize naturally (the jitter occasionally
        lets one slot issue a short burst), matching the observation
        in §VI-C that even identical copies drift apart.
        """
        rng = make_rng(self.seed, "interleave", self.names)
        streams = [
            iter(w.accesses(per_program, stream_id=slot))
            for slot, w in enumerate(self.workloads)
        ]
        live = list(range(len(streams)))
        while live:
            for slot in list(live):
                burst = 1 + (rng.randrange(3) if rng.random() < 0.2 else 0)
                for _ in range(burst):
                    try:
                        access = next(streams[slot])
                    except StopIteration:
                        if slot in live:
                            live.remove(slot)
                        break
                    yield TaggedAccess(slot=slot, access=access)
