"""SPEC2006 benchmark profiles — the workload substitution.

Each profile parameterizes the synthetic generator in
:mod:`repro.trace.stream` so that the *off-chip data stream* of the
benchmark reproduces the compression characteristics the paper
reports, not its instruction-level behaviour:

- ``pattern_weights`` control the per-line content mix (see
  :mod:`repro.trace.patterns` for who compresses what);
- ``family_*`` control inter-line similarity: how much of the
  footprint consists of near-duplicate copies of archetype lines, how
  mutated and how (byte-)shifted the copies are — the axis separating
  CABLE from small-dictionary and stream-window schemes;
- ``working_set_lines``/``locality``/``seq_run`` shape reuse
  distances and therefore LLC hit rates and how far apart similar
  lines land in the miss stream (inside gzip's 32KB window or only
  inside the LLC-sized CABLE dictionary);
- ``llc_apki`` (LLC accesses per kilo-instruction) feeds the timing
  and throughput models.

The classification of benchmarks (zero-dominant, CABLE-favoured,
gzip-favoured, compute-intensive) follows the paper's own grouping in
Fig 12 and §VI-B plus published SPEC2006 memory characterization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Synthetic-workload parameters for one SPEC2006 benchmark."""

    name: str
    suite: str  # "int" or "fp"
    working_set_lines: int
    #: Probability an accessed line belongs to an archetype family
    #: (positional near-duplicates — CABLE's food).
    family_weight: float
    #: Average family size in lines; family members scatter across the
    #: whole footprint, far apart in the miss stream.
    members_per_family: int
    #: Max 32-bit word edits applied to each family copy.
    mutation_words: int
    #: Probability a family copy is byte-shifted (breaks word-aligned
    #: CBV matching, favours gzip/ORACLE).
    shift_prob: float
    #: Content mix for non-family lines (see PATTERN_GENERATORS).
    pattern_weights: Dict[str, float]
    #: Fraction of accesses that are stores.
    write_fraction: float
    #: Probability the next access continues a sequential run.
    locality: float
    #: Zipf-style skew of random jumps (higher → tighter hot set).
    reuse_skew: float
    #: LLC accesses per kilo-instruction (memory intensity).
    llc_apki: float
    #: In the paper's zero-dominant group (excluded from sensitivity
    #: and multiprogram studies, §VI-C/§VI-E)?
    zero_dominant: bool = False
    #: Family members appear in contiguous *clusters* of this many
    #: lines (arrays of similar objects): within-cluster similarity is
    #: short-range (visible to gzip's stream window under sequential
    #: scans), cross-cluster similarity is long-range (visible only to
    #: an LLC-sized dictionary).
    cluster_lines: int = 4

    @property
    def family_count(self) -> int:
        family_lines = max(1, int(self.working_set_lines * self.family_weight))
        return max(1, family_lines // max(1, self.members_per_family))


def _profile(**kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(**kwargs)


_K = 1024

#: All 29 SPEC2006 benchmarks.
SPEC2006: Dict[str, BenchmarkProfile] = {}


def _register(profile: BenchmarkProfile) -> None:
    SPEC2006[profile.name] = profile


# ----------------------------------------------------------------------
# Zero-dominant group (Fig 12's right-hand group: >=16x for everyone).
# Their off-chip traffic is dominated by zero/constant lines.
# ----------------------------------------------------------------------

_register(_profile(
    name="mcf", suite="int", working_set_lines=512 * _K,
    family_weight=0.30, members_per_family=24, mutation_words=1, shift_prob=0.0,
    pattern_weights={"zero": 0.90, "repeat": 0.06, "small_int": 0.030, "pointer": 0.008, "random": 0.002},
    write_fraction=0.22, locality=0.35, reuse_skew=1.6, llc_apki=75.0,
    zero_dominant=True,
))
_register(_profile(
    name="lbm", suite="fp", working_set_lines=400 * _K,
    family_weight=0.35, members_per_family=32, mutation_words=1, shift_prob=0.0,
    pattern_weights={"zero": 0.91, "repeat": 0.05, "float": 0.015, "small_int": 0.023, "random": 0.002},
    write_fraction=0.45, locality=0.80, reuse_skew=1.1, llc_apki=42.0,
    zero_dominant=True,
))
_register(_profile(
    name="GemsFDTD", suite="fp", working_set_lines=384 * _K,
    family_weight=0.35, members_per_family=24, mutation_words=1, shift_prob=0.0,
    pattern_weights={"zero": 0.90, "repeat": 0.055, "float": 0.018, "small_int": 0.025, "random": 0.002},
    write_fraction=0.30, locality=0.75, reuse_skew=1.2, llc_apki=28.0,
    zero_dominant=True,
))
_register(_profile(
    name="milc", suite="fp", working_set_lines=320 * _K,
    family_weight=0.32, members_per_family=24, mutation_words=1, shift_prob=0.0,
    pattern_weights={"zero": 0.87, "repeat": 0.065, "float": 0.028, "small_int": 0.035, "random": 0.002},
    write_fraction=0.30, locality=0.65, reuse_skew=1.2, llc_apki=30.0,
    zero_dominant=True,
))
_register(_profile(
    name="libquantum", suite="int", working_set_lines=256 * _K,
    family_weight=0.25, members_per_family=32, mutation_words=0, shift_prob=0.0,
    pattern_weights={"zero": 0.91, "repeat": 0.07, "small_int": 0.018, "random": 0.002},
    write_fraction=0.25, locality=0.90, reuse_skew=1.0, llc_apki=28.0,
    zero_dominant=True,
))
_register(_profile(
    name="bwaves", suite="fp", working_set_lines=320 * _K,
    family_weight=0.35, members_per_family=24, mutation_words=1, shift_prob=0.0,
    pattern_weights={"zero": 0.89, "repeat": 0.06, "float": 0.025, "small_int": 0.023, "random": 0.002},
    write_fraction=0.28, locality=0.85, reuse_skew=1.1, llc_apki=22.0,
    zero_dominant=True,
))

# ----------------------------------------------------------------------
# CABLE-favoured benchmarks (SVI-B: dealII, tonto, zeusmp, gobmk):
# lots of positional object copies scattered beyond gzip's window.
# ----------------------------------------------------------------------

_register(_profile(
    name="dealII", suite="fp", working_set_lines=96 * _K,
    family_weight=0.88, members_per_family=28, mutation_words=1, shift_prob=0.01,
    pattern_weights={"float": 0.40, "struct": 0.25, "small_int": 0.15, "zero": 0.15, "random": 0.05},
    write_fraction=0.20, locality=0.45, reuse_skew=1.3, llc_apki=6.0,
))
_register(_profile(
    name="tonto", suite="fp", working_set_lines=64 * _K,
    family_weight=0.85, members_per_family=24, mutation_words=1, shift_prob=0.01,
    pattern_weights={"float": 0.45, "struct": 0.20, "small_int": 0.15, "zero": 0.15, "random": 0.05},
    write_fraction=0.22, locality=0.40, reuse_skew=1.3, llc_apki=2.5,
))
_register(_profile(
    name="zeusmp", suite="fp", working_set_lines=128 * _K,
    family_weight=0.80, members_per_family=30, mutation_words=1, shift_prob=0.01,
    pattern_weights={"float": 0.50, "small_int": 0.15, "zero": 0.25, "random": 0.10},
    write_fraction=0.30, locality=0.55, reuse_skew=1.2, llc_apki=9.0,
))
_register(_profile(
    name="gobmk", suite="int", working_set_lines=48 * _K,
    family_weight=0.80, members_per_family=24, mutation_words=1, shift_prob=0.02,
    pattern_weights={"struct": 0.35, "small_int": 0.30, "pointer": 0.15, "zero": 0.15, "random": 0.05},
    write_fraction=0.25, locality=0.35, reuse_skew=1.4, llc_apki=1.2,
))

# ----------------------------------------------------------------------
# gzip-favoured benchmarks: byte-shifted copies, text, and stream-local
# redundancy inside the 32KB window.
# ----------------------------------------------------------------------

_register(_profile(
    name="perlbench", suite="int", working_set_lines=40 * _K,
    family_weight=0.55, members_per_family=18, mutation_words=2, shift_prob=0.50,
    pattern_weights={"text": 0.35, "struct": 0.25, "pointer": 0.15, "zero": 0.15, "random": 0.10},
    write_fraction=0.25, locality=0.60, reuse_skew=1.4, llc_apki=2.2,
))
_register(_profile(
    name="xalancbmk", suite="int", working_set_lines=80 * _K,
    family_weight=0.60, members_per_family=20, mutation_words=2, shift_prob=0.45,
    pattern_weights={"text": 0.30, "pointer": 0.25, "struct": 0.20, "zero": 0.15, "random": 0.10},
    write_fraction=0.20, locality=0.55, reuse_skew=1.3, llc_apki=11.0,
))
_register(_profile(
    name="h264ref", suite="int", working_set_lines=32 * _K,
    family_weight=0.55, members_per_family=18, mutation_words=2, shift_prob=0.45,
    pattern_weights={"small_int": 0.40, "struct": 0.20, "random": 0.20, "text": 0.10, "zero": 0.10},
    write_fraction=0.30, locality=0.75, reuse_skew=1.2, llc_apki=2.0,
))

# ----------------------------------------------------------------------
# Remaining integer benchmarks.
# ----------------------------------------------------------------------

_register(_profile(
    name="bzip2", suite="int", working_set_lines=96 * _K,
    family_weight=0.50, members_per_family=20, mutation_words=3, shift_prob=0.15,
    pattern_weights={"random": 0.30, "small_int": 0.25, "text": 0.20, "struct": 0.15, "zero": 0.10},
    write_fraction=0.30, locality=0.70, reuse_skew=1.2, llc_apki=4.5,
))
_register(_profile(
    name="gcc", suite="int", working_set_lines=64 * _K,
    family_weight=0.72, members_per_family=24, mutation_words=1, shift_prob=0.08,
    pattern_weights={"struct": 0.30, "pointer": 0.25, "small_int": 0.20, "zero": 0.20, "random": 0.05},
    write_fraction=0.25, locality=0.50, reuse_skew=1.3, llc_apki=6.5,
))
_register(_profile(
    name="omnetpp", suite="int", working_set_lines=160 * _K,
    family_weight=0.70, members_per_family=30, mutation_words=1, shift_prob=0.04,
    pattern_weights={"pointer": 0.35, "struct": 0.25, "small_int": 0.15, "zero": 0.20, "random": 0.05},
    write_fraction=0.30, locality=0.30, reuse_skew=1.4, llc_apki=20.0,
))
_register(_profile(
    name="astar", suite="int", working_set_lines=128 * _K,
    family_weight=0.62, members_per_family=28, mutation_words=1, shift_prob=0.04,
    pattern_weights={"pointer": 0.30, "small_int": 0.25, "struct": 0.20, "zero": 0.20, "random": 0.05},
    write_fraction=0.25, locality=0.40, reuse_skew=1.4, llc_apki=10.0,
))
_register(_profile(
    name="hmmer", suite="int", working_set_lines=24 * _K,
    family_weight=0.55, members_per_family=20, mutation_words=2, shift_prob=0.04,
    pattern_weights={"small_int": 0.45, "struct": 0.20, "zero": 0.15, "random": 0.20},
    write_fraction=0.35, locality=0.80, reuse_skew=1.1, llc_apki=1.4,
))
_register(_profile(
    name="sjeng", suite="int", working_set_lines=48 * _K,
    family_weight=0.55, members_per_family=20, mutation_words=2, shift_prob=0.04,
    pattern_weights={"small_int": 0.35, "struct": 0.25, "random": 0.20, "pointer": 0.10, "zero": 0.10},
    write_fraction=0.25, locality=0.45, reuse_skew=1.3, llc_apki=1.0,
))

# ----------------------------------------------------------------------
# Remaining floating-point benchmarks.
# ----------------------------------------------------------------------

_register(_profile(
    name="gamess", suite="fp", working_set_lines=16 * _K,
    family_weight=0.65, members_per_family=20, mutation_words=1, shift_prob=0.02,
    pattern_weights={"float": 0.45, "small_int": 0.25, "struct": 0.15, "zero": 0.10, "random": 0.05},
    write_fraction=0.25, locality=0.60, reuse_skew=1.2, llc_apki=0.6,
))
_register(_profile(
    name="gromacs", suite="fp", working_set_lines=32 * _K,
    family_weight=0.60, members_per_family=20, mutation_words=2, shift_prob=0.04,
    pattern_weights={"float": 0.50, "small_int": 0.20, "struct": 0.10, "zero": 0.10, "random": 0.10},
    write_fraction=0.30, locality=0.65, reuse_skew=1.2, llc_apki=1.8,
))
_register(_profile(
    name="cactusADM", suite="fp", working_set_lines=160 * _K,
    family_weight=0.72, members_per_family=30, mutation_words=1, shift_prob=0.02,
    pattern_weights={"float": 0.45, "zero": 0.30, "small_int": 0.15, "random": 0.10},
    write_fraction=0.35, locality=0.70, reuse_skew=1.1, llc_apki=8.5,
))
_register(_profile(
    name="leslie3d", suite="fp", working_set_lines=192 * _K,
    family_weight=0.65, members_per_family=34, mutation_words=1, shift_prob=0.02,
    pattern_weights={"float": 0.50, "zero": 0.25, "small_int": 0.15, "random": 0.10},
    write_fraction=0.30, locality=0.75, reuse_skew=1.1, llc_apki=14.0,
))
_register(_profile(
    name="namd", suite="fp", working_set_lines=32 * _K,
    family_weight=0.35, members_per_family=12, mutation_words=4, shift_prob=0.10,
    pattern_weights={"float": 0.65, "small_int": 0.10, "zero": 0.05, "random": 0.20},
    write_fraction=0.25, locality=0.70, reuse_skew=1.2, llc_apki=1.1,
))
_register(_profile(
    name="soplex", suite="fp", working_set_lines=192 * _K,
    family_weight=0.65, members_per_family=30, mutation_words=1, shift_prob=0.04,
    pattern_weights={"float": 0.35, "pointer": 0.15, "small_int": 0.20, "zero": 0.20, "random": 0.10},
    write_fraction=0.20, locality=0.45, reuse_skew=1.3, llc_apki=24.0,
))
_register(_profile(
    name="povray", suite="fp", working_set_lines=12 * _K,
    family_weight=0.62, members_per_family=20, mutation_words=1, shift_prob=0.04,
    pattern_weights={"float": 0.40, "struct": 0.25, "small_int": 0.20, "zero": 0.10, "random": 0.05},
    write_fraction=0.25, locality=0.70, reuse_skew=1.3, llc_apki=0.35,
))
_register(_profile(
    name="calculix", suite="fp", working_set_lines=48 * _K,
    family_weight=0.62, members_per_family=24, mutation_words=1, shift_prob=0.03,
    pattern_weights={"float": 0.50, "small_int": 0.20, "struct": 0.10, "zero": 0.10, "random": 0.10},
    write_fraction=0.25, locality=0.70, reuse_skew=1.2, llc_apki=1.9,
))
_register(_profile(
    name="wrf", suite="fp", working_set_lines=128 * _K,
    family_weight=0.68, members_per_family=28, mutation_words=1, shift_prob=0.02,
    pattern_weights={"float": 0.45, "zero": 0.25, "small_int": 0.20, "random": 0.10},
    write_fraction=0.30, locality=0.70, reuse_skew=1.1, llc_apki=7.5,
))
_register(_profile(
    name="sphinx3", suite="fp", working_set_lines=96 * _K,
    family_weight=0.65, members_per_family=28, mutation_words=1, shift_prob=0.05,
    pattern_weights={"float": 0.40, "small_int": 0.30, "struct": 0.10, "zero": 0.10, "random": 0.10},
    write_fraction=0.15, locality=0.60, reuse_skew=1.2, llc_apki=12.0,
))


#: Names of the paper's non-trivial (not zero-dominant) set, used by
#: the multiprogram and sensitivity studies.
NON_TRIVIAL: Tuple[str, ...] = tuple(
    sorted(name for name, p in SPEC2006.items() if not p.zero_dominant)
)

ZERO_DOMINANT: Tuple[str, ...] = tuple(
    sorted(name for name, p in SPEC2006.items() if p.zero_dominant)
)

ALL_BENCHMARKS: Tuple[str, ...] = tuple(sorted(SPEC2006))


# ----------------------------------------------------------------------
# Beyond-SPEC workloads (memory-tier scenarios). Registered separately
# so ALL_BENCHMARKS — and every figure sweep iterating it — is
# unchanged; resolvable through get_profile like any SPEC name.
# ----------------------------------------------------------------------

EXTRA_PROFILES: Dict[str, BenchmarkProfile] = {}


def _register_extra(profile: BenchmarkProfile) -> None:
    EXTRA_PROFILES[profile.name] = profile


# Irregular sparse-fiber reuse (FiberCache/Gamma-style SpMV): gathers
# jump across the whole fiber heap (low locality) but a power-law hot
# set of popular rows is re-fetched constantly (high reuse skew) —
# the regime an explicitly managed fiber buffer targets. Fibers from
# one matrix region are near-duplicate lines (family members), so the
# tier links see CABLE-compressible long-range similarity.
_register_extra(_profile(
    name="spmv", suite="tier", working_set_lines=96 * _K,
    family_weight=0.70, members_per_family=22, mutation_words=2, shift_prob=0.0,
    pattern_weights={"fiber": 0.55, "float": 0.15, "pointer": 0.10,
                     "small_int": 0.10, "zero": 0.08, "random": 0.02},
    write_fraction=0.10, locality=0.25, reuse_skew=2.2, llc_apki=30.0,
    cluster_lines=6,
))
# SpGEMM-style merge: same fiber content but a heavy output-fiber
# write stream and an even more irregular gather pattern.
_register_extra(_profile(
    name="spgemm", suite="tier", working_set_lines=128 * _K,
    family_weight=0.62, members_per_family=18, mutation_words=3, shift_prob=0.0,
    pattern_weights={"fiber": 0.50, "float": 0.15, "pointer": 0.12,
                     "small_int": 0.10, "zero": 0.08, "random": 0.05},
    write_fraction=0.35, locality=0.20, reuse_skew=1.8, llc_apki=38.0,
    cluster_lines=6,
))

TIER_BENCHMARKS: Tuple[str, ...] = tuple(sorted(EXTRA_PROFILES))


def get_profile(name: str) -> BenchmarkProfile:
    try:
        return SPEC2006[name]
    except KeyError:
        pass
    try:
        return EXTRA_PROFILES[name]
    except KeyError:
        known = ", ".join(ALL_BENCHMARKS + TIER_BENCHMARKS)
        raise ValueError(f"unknown benchmark {name!r}; known: {known}") from None
