"""Data-content pattern generators.

The reproduction cannot use the paper's SimPoint traces (proprietary
SPEC2006 binaries + a trace format tied to PriME), so workloads are
synthesized from *data-pattern families* whose interaction with each
compression class is understood:

================= ====================================================
family            who benefits
================= ====================================================
zero lines        everyone (zero codes / runs); the 32× link cap
small integers    per-word coders (CPACK zzzx, BDI small deltas)
pointer arrays    BDI (shared base) and CPACK partial matches
float arrays      nobody per-word — only inter-line similarity helps,
                  which is exactly CABLE's niche
struct copies     positional near-duplicates of an archetype line —
                  CABLE's CBV sees them wherever they sit in the
                  cache; gzip only if they recur within its window
shifted copies    byte-shifted duplicates — gzip/ORACLE catch these,
                  CABLE's word-aligned CBV mostly does not (§VI-E's
                  CABLE+ORACLE gap)
text              gzip-friendly byte redundancy
random            incompressible filler
sparse fibers     CSR coordinate/value runs (FiberCache-style) —
                  coordinate halves behave like pointer arrays, value
                  halves like floats; same-region fibers are
                  near-duplicates (CABLE and the memory-tier
                  scenarios)
================= ====================================================

Every generator is deterministic in (seed, address), so a line's
content is a pure function of its address — re-reading an address
after eviction reproduces identical bytes, exactly like real memory.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List

from repro.util.rng import make_rng
from repro.util.words import words_to_bytes

LINE_BYTES = 64
WORDS = 16


def zero_line(rng) -> bytes:
    return b"\x00" * LINE_BYTES


def small_int_line(rng) -> bytes:
    """Counters, sizes, flags: mostly zeros and ≤8-bit values, the
    bread and butter of significance-based coders (CPACK zzzx, BDI)."""
    words = []
    for _ in range(WORDS):
        point = rng.random()
        if point < 0.62:
            words.append(0)
        elif point < 0.94:
            words.append(rng.randrange(1, 256))
        else:
            words.append(rng.randrange(1 << 16))
    return words_to_bytes(words)


def pointer_array_line(rng) -> bytes:
    """64-bit pointers into a heap region: identical high words and
    shared upper address bits (CPACK partial matches), with null
    entries sprinkled in as real pointer arrays have."""
    base = rng.randrange(16) << 24
    out = bytearray()
    for _ in range(8):
        if rng.random() < 0.25:
            out += struct.pack("<Q", 0)
        else:
            pointer = 0x7F3A_0000_0000 | base | (rng.randrange(1 << 17) * 8)
            out += struct.pack("<Q", pointer)
    return bytes(out)


def float_array_line(rng) -> bytes:
    """Doubles from a sparse field: high-entropy mantissas where
    populated, zero elsewhere. The populated words defeat per-word
    coders; only inter-line similarity (CABLE's niche) compresses
    them."""
    out = bytearray()
    value = rng.uniform(-1000.0, 1000.0)
    for _ in range(8):
        if rng.random() < 0.45:
            out += struct.pack("<d", 0.0)
        else:
            value += rng.gauss(0.0, 1.0)
            out += struct.pack("<d", value)
    return bytes(out)


def text_line(rng) -> bytes:
    """ASCII with natural-language-ish repetition."""
    vocab = [b"the ", b"and ", b"node", b"edge", b"list", b"tree", b"atom", b"cell"]
    out = bytearray()
    while len(out) < LINE_BYTES:
        out += rng.choice(vocab)
    return bytes(out[:LINE_BYTES])


def random_line(rng) -> bytes:
    return bytes(rng.randrange(256) for _ in range(LINE_BYTES))


def struct_record_line(rng) -> bytes:
    """A typical heap object: vtable/type pointer, object pointers,
    small fields, zero padding. The pointer words carry real entropy —
    as in live heaps, where headers are vtable addresses — which is
    what makes them useful signatures."""
    words: List[int] = []
    words.append(0x0804_0000 | rng.getrandbits(18))  # vtable/type pointer
    words.append(rng.randrange(1 << 12))  # refcount / size
    base = 0x7F3A_0000 | (rng.randrange(8) << 16)
    for _ in range(3):
        words.append(base + rng.getrandbits(14))
    for _ in range(5):
        words.append(rng.randrange(100))
    while len(words) < WORDS:
        words.append(0)
    return words_to_bytes(words)


def repeated_value_line(rng) -> bytes:
    """One value replicated across the line (initialization fills,
    sentinel arrays) — the "repeated values" the paper groups with
    zeros as trivially compressible."""
    if rng.random() < 0.5:
        word = rng.randrange(1, 256)
    else:
        word = rng.getrandbits(32)
    return words_to_bytes([word] * WORDS)


def sparse_fiber_line(rng) -> bytes:
    """One line of a CSR-style sparse fiber (Gamma/FiberCache): a run
    of ascending coordinate indices followed by their float32 values,
    stored struct-of-arrays within the line.

    Coordinates share one matrix's column-space high bits and climb
    with power-law gaps (sparse rows cluster their nonzeros); short
    fibers leave zero tails. The coordinate half compresses like a
    pointer array (shared base, small deltas), the value half like
    floats — and fibers drawn from the same matrix region are
    positional near-duplicates of each other, which is exactly the
    irregular long-range reuse the memory-tier scenarios stress."""
    nnz = rng.randint(3, WORDS // 2)
    base = rng.randrange(1 << 8) << 16
    coord = base + rng.randrange(1 << 10)
    coords: List[int] = []
    for _ in range(nnz):
        coords.append(coord & 0xFFFFFFFF)
        # Power-law gap: most nonzeros are near-adjacent, a few jump.
        coord += 1 + int((rng.random() ** 2.5) * 512)
    coords += [0] * (WORDS // 2 - nnz)
    values: List[int] = []
    magnitude = rng.uniform(-2.0, 2.0)
    for i in range(WORDS // 2):
        if i < nnz:
            magnitude += rng.gauss(0.0, 0.25)
            values.append(struct.unpack("<I", struct.pack("<f", magnitude))[0])
        else:
            values.append(0)
    return words_to_bytes(coords + values)


#: Name → generator, referenced by benchmark profiles.
PATTERN_GENERATORS: Dict[str, Callable] = {
    "zero": zero_line,
    "small_int": small_int_line,
    "pointer": pointer_array_line,
    "float": float_array_line,
    "text": text_line,
    "random": random_line,
    "struct": struct_record_line,
    "repeat": repeated_value_line,
    "fiber": sparse_fiber_line,
}


def mutate_line(line: bytes, rng, word_edits: int) -> bytes:
    """Copy *line* with up to *word_edits* random 32-bit word edits —
    the small diffs between object copies that CABLE compresses as a
    pointer + DIFF (Fig 2)."""
    if word_edits <= 0:
        return line
    out = bytearray(line)
    for _ in range(word_edits):
        word = rng.randrange(WORDS)
        kind = rng.random()
        if kind < 0.75:
            # Small-field tweak (counter bump, flag change): the common
            # object edit, and cheap for significance-based coders.
            struct.pack_into("<I", out, word * 4, rng.randrange(1 << 8))
        else:
            struct.pack_into("<I", out, word * 4, rng.getrandbits(32))
    return bytes(out)


def shift_line(line: bytes, byte_shift: int) -> bytes:
    """Rotate a line by a byte amount — duplicates that gzip's
    byte-granular matching finds but word-positional CBVs do not
    (unless the shift is a multiple of four *and* content repeats)."""
    byte_shift %= LINE_BYTES
    return line[-byte_shift:] + line[:-byte_shift] if byte_shift else line


def family_member(
    archetype: bytes, seed: int, member_id: int, word_edits: int, shift_prob: float
) -> bytes:
    """The member_id-th copy of an archetype: mutated, maybe shifted."""
    rng = make_rng(seed, "family-member", member_id)
    line = mutate_line(archetype, rng, rng.randint(0, word_edits))
    if rng.random() < shift_prob:
        line = shift_line(line, rng.choice((1, 2, 3, 5, 6, 7, 9)))
    return line
