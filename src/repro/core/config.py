"""CABLE configuration — every §III/§VI-A parameter in one place.

The defaults reproduce the paper's baseline: two signatures indexed per
line, hash buckets of two LineIDs, six data-array accesses after
pre-ranking, up to three references per DIFF, a 16× no-reference
shortcut threshold, and the Table IV compression latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.fault.plan import FaultPlan, RecoveryPolicy
from repro.state.plan import DurabilityPolicy


@dataclass(frozen=True)
class CableConfig:
    """Tunable parameters of the CABLE framework."""

    # --- geometry ------------------------------------------------------
    line_bytes: int = 64

    # --- signature extraction (§III-A) --------------------------------
    #: Default byte offsets where index-time signatures are sampled
    #: (Fig 5); each slides forward past trivial words.
    signature_offsets: tuple = (0, 32)
    #: Number of signatures inserted into the hash table per line.
    signatures_per_line: int = 2
    #: A word with this many leading zeros/ones is trivial (Fig 6).
    trivial_threshold_bits: int = 24
    #: Signature offsets advance by whole words, not bytes (§III-A).
    signature_stride_bytes: int = 4
    #: H3 hash seed for the signature hash function.
    hash_seed: int = 0xCAB1E

    # --- hash table (§III-B) -------------------------------------------
    #: Entries as a fraction of home-cache lines: 1.0 is "full-sized".
    hash_table_scale: float = 1.0
    #: LineIDs stored per hash bucket.
    hash_bucket_entries: int = 2

    # --- search (§III-C) -----------------------------------------------
    #: Candidates read from the data array after pre-ranking.
    data_access_count: int = 6
    #: References selected by the greedy CBV ranking.
    max_references: int = 3
    #: Reference selection: "greedy" (the paper's marginal-coverage
    #: ranking) or "top" (naive: highest individual CBVs, ignoring
    #: overlap) — an ablation of the §III-C design choice.
    ranking_policy: str = "greedy"
    #: Lines per block for the batched encode entry points
    #: (``encode_batch`` / ``search_batch``). Purely a throughput knob:
    #: the batched paths are byte-identical to the scalar pipeline at
    #: any block size.
    batch_block_size: int = 64

    # --- compression & transmission (§III-E) ---------------------------
    #: Engine paired with CABLE ("lbe", "cpack", "cpack128", "gzip",
    #: "oracle").
    engine: str = "lbe"
    #: If the no-reference compression reaches this ratio, skip the
    #: reference search result and send without pointers.
    no_reference_threshold: float = 16.0
    #: RemoteLID width on the wire; 17 bits for the off-chip buffer use
    #: case per Table III.
    remotelid_bits: int = 17

    # --- latencies in cycles (Table IV / §IV-D) ------------------------
    search_latency: int = 16
    compress_latency: int = 32  # includes search: paper's comp number
    decompress_latency: int = 16

    # --- race handling (§IV-A) -----------------------------------------
    eviction_buffer_entries: int = 16
    #: What a full eviction buffer does with the next record:
    #: "drop-oldest" (hardware behaviour — the oldest unacknowledged
    #: entry is sacrificed and counted) or "strict" (raise
    #: :class:`repro.core.errors.EvictionBufferOverflowError`; used by
    #: tests to prove a sizing is sufficient).
    eviction_buffer_policy: str = "drop-oldest"

    # --- fault injection & link recovery -------------------------------
    #: When set (and any rate is nonzero), the link runs through the
    #: fault injectors of :mod:`repro.fault.injectors`.
    faults: Optional[FaultPlan] = None
    #: When set, payloads cross the link as CRC-guarded frames with
    #: NACK/retransmit recovery and a degradation circuit breaker
    #: (:mod:`repro.link.recovery`). Implied (with defaults) whenever
    #: ``faults`` is active.
    recovery: Optional[RecoveryPolicy] = None
    #: When set, each endpoint's mirrored metadata is guarded by a
    #: snapshot+journal :class:`repro.state.manager.EndpointStateManager`
    #: and a crashed endpoint recovers by epoch handshake + journal
    #: replay instead of a full ground-truth rebuild. Implies
    #: ``recovery`` (with defaults) when that is unset.
    durability: Optional[DurabilityPolicy] = None

    def __post_init__(self) -> None:
        if self.line_bytes % 4:
            raise ValueError("line size must be word aligned")
        if self.signatures_per_line < 1:
            raise ValueError("at least one signature per line is required")
        if not self.signature_offsets:
            raise ValueError("signature_offsets must not be empty")
        if any(off % 4 or not 0 <= off < self.line_bytes for off in self.signature_offsets):
            raise ValueError("signature offsets must be word-aligned and in-line")
        if self.hash_bucket_entries < 1:
            raise ValueError("hash buckets need at least one entry")
        if self.data_access_count < 1:
            raise ValueError("at least one data access is required")
        if self.max_references < 0:
            raise ValueError("max_references cannot be negative")
        if self.hash_table_scale <= 0:
            raise ValueError("hash_table_scale must be positive")
        if self.ranking_policy not in ("greedy", "top"):
            raise ValueError("ranking_policy must be 'greedy' or 'top'")
        if self.batch_block_size < 1:
            raise ValueError("batch_block_size must be at least one line")
        if self.eviction_buffer_policy not in ("drop-oldest", "strict"):
            raise ValueError(
                "eviction_buffer_policy must be 'drop-oldest' or 'strict'"
            )

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // 4

    @property
    def max_signatures(self) -> int:
        """Up to one signature per word can be extracted when searching."""
        return self.words_per_line

    @property
    def end_to_end_latency(self) -> int:
        """Worst-case encode+decode latency in cycles (Table IV: 48)."""
        return self.compress_latency + self.decompress_latency

    def with_overrides(self, **kwargs) -> "CableConfig":
        """A copy with selected fields replaced (sweeps/ablations)."""
        return replace(self, **kwargs)
