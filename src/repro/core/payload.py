"""Wire format and bit accounting (§III-E).

Payload overheads are deliberately minimal:

- a 1-bit flag saying whether the data is compressed at all;
- when compressed, a 2-bit reference count (0–3);
- one RemoteLID per reference (17 bits in the off-chip buffer
  configuration, Table III);
- the variable-length DIFF. No length field is needed because the
  decompressed size is fixed at one line.

An uncompressed payload is the flag plus the raw line. The link layer
(:mod:`repro.link.channel`) packs these bit counts into 16-bit flits,
which is what caps the effective ratio at 32× for a 64-byte line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from repro.cache.setassoc import LineId
from repro.compression.base import CompressedBlock
from repro.util.kernels import DATACLASS_SLOTS

#: Compressed/uncompressed selector.
FLAG_BITS = 1
#: Number-of-references field.
REFCOUNT_BITS = 2


class PayloadKind(Enum):
    UNCOMPRESSED = "uncompressed"
    NO_REFERENCE = "no_reference"
    WITH_REFERENCES = "with_references"


@dataclass(frozen=True, **DATACLASS_SLOTS)
class Payload:
    """One line's worth of link traffic, home → remote or back."""

    kind: PayloadKind
    line_addr: int
    line_bytes: int
    remote_lids: Tuple[LineId, ...] = ()
    block: Optional[CompressedBlock] = None
    raw: Optional[bytes] = field(default=None, repr=False)
    remotelid_bits: int = 17
    #: Line addresses of the references, in pointer order. This is
    #: *model metadata*, not wire content (hardware gets the guarantee
    #: from link ordering / the eviction-buffer protocol of §IV-A); the
    #: decoder uses it to detect stale slots and fall back to the
    #: eviction buffer. Never counted in :attr:`size_bits`.
    ref_addrs: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind is PayloadKind.UNCOMPRESSED:
            if self.raw is None:
                raise ValueError("uncompressed payloads carry the raw line")
        elif self.block is None:
            raise ValueError("compressed payloads carry a CompressedBlock")
        if self.kind is PayloadKind.WITH_REFERENCES and not self.remote_lids:
            raise ValueError("with_references payloads need at least one pointer")
        if self.kind is PayloadKind.NO_REFERENCE and self.remote_lids:
            raise ValueError("no_reference payloads carry no pointers")
        if len(self.remote_lids) > 3:
            raise ValueError("at most three references fit the 2-bit count")

    @property
    def size_bits(self) -> int:
        """Exact payload size on the wire."""
        if self.kind is PayloadKind.UNCOMPRESSED:
            return FLAG_BITS + self.line_bytes * 8
        pointer_bits = len(self.remote_lids) * self.remotelid_bits
        return FLAG_BITS + REFCOUNT_BITS + pointer_bits + self.block.size_bits

    @property
    def compression_ratio(self) -> float:
        return (self.line_bytes * 8) / self.size_bits

    @property
    def uses_references(self) -> bool:
        return self.kind is PayloadKind.WITH_REFERENCES


def choose_payload(
    line_addr: int,
    line: bytes,
    with_refs: Optional[Tuple[CompressedBlock, Tuple[LineId, ...], Tuple[int, ...]]],
    no_ref: CompressedBlock,
    no_reference_threshold: float,
    remotelid_bits: int,
) -> Payload:
    """Apply §III-E's selection rule.

    The no-reference compression runs concurrently with the search; it
    wins outright when its ratio clears the threshold (such lines are
    trivially compressible — no point paying for pointers), otherwise
    the smaller of the two candidates is sent. Anything that would
    exceed the raw line is sent uncompressed.
    """
    # Decide on sizes alone, then construct exactly one Payload — this
    # runs once per encoded line, and payload construction (a frozen
    # dataclass) costs more than the whole arithmetic below.
    line_bytes = len(line)
    line_bits = line_bytes * 8
    no_ref_bits = FLAG_BITS + REFCOUNT_BITS + no_ref.size_bits
    shortcut = line_bits / no_ref_bits >= no_reference_threshold

    best_bits = no_ref_bits
    if not shortcut and with_refs is not None:
        block, lids, addrs = with_refs
        with_refs_bits = (
            FLAG_BITS + REFCOUNT_BITS + len(lids) * remotelid_bits + block.size_bits
        )
        # Ties go to no_ref (min() keeps the first minimal candidate).
        if with_refs_bits < no_ref_bits:
            best_bits = with_refs_bits
            if best_bits < FLAG_BITS + line_bits:
                return Payload(
                    kind=PayloadKind.WITH_REFERENCES,
                    line_addr=line_addr,
                    line_bytes=line_bytes,
                    remote_lids=lids,
                    block=block,
                    remotelid_bits=remotelid_bits,
                    ref_addrs=addrs,
                )
    if not shortcut and best_bits >= FLAG_BITS + line_bits:
        return Payload(
            kind=PayloadKind.UNCOMPRESSED,
            line_addr=line_addr,
            line_bytes=line_bytes,
            raw=line,
            remotelid_bits=remotelid_bits,
        )
    return Payload(
        kind=PayloadKind.NO_REFERENCE,
        line_addr=line_addr,
        line_bytes=line_bytes,
        block=no_ref,
        remotelid_bits=remotelid_bits,
    )
