"""Cycle-level model of the search pipeline (§IV-D, "Search Latency").

The paper's hardware walk-through: per signature — hash it (1 cycle),
access the hash table (1), read the data array (4, eDRAM without tag
check), build the coverage vector (1), rank (1) — eight cycles of
latency per signature, pipelined. Throughput is limited by the hash
table's read ports: 2-way banking checks two signatures per cycle, so
16 signatures drain in 8 issue cycles and the last one completes at
cycle 16. A zero-heavy line with few signatures finishes in as little
as 8 cycles. This module reproduces that arithmetic for arbitrary
configurations and drives it with real extraction counts, validating
the worst-case number Table IV charges CABLE for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CableConfig
from repro.core.signature import SignatureExtractor

#: §IV-D stage latencies (cycles).
HASH_CYCLES = 1
TABLE_CYCLES = 1
DATA_ARRAY_CYCLES = 4
CBV_CYCLES = 1
RANK_CYCLES = 1


@dataclass(frozen=True)
class SearchPipelineModel:
    """Latency/occupancy model of the hardware search pipeline."""

    #: Concurrent signature checks per cycle (hash-table banks/ports).
    hash_banks: int = 2
    hash_cycles: int = HASH_CYCLES
    table_cycles: int = TABLE_CYCLES
    data_array_cycles: int = DATA_ARRAY_CYCLES
    cbv_cycles: int = CBV_CYCLES
    rank_cycles: int = RANK_CYCLES

    @property
    def per_signature_latency(self) -> int:
        """Cycles from issuing one signature to its ranked CBV —
        the paper's eight."""
        return (
            self.hash_cycles
            + self.table_cycles
            + self.data_array_cycles
            + self.cbv_cycles
            + self.rank_cycles
        )

    def search_cycles(self, signature_count: int) -> int:
        """Total latency to search *signature_count* signatures.

        Signatures issue ``hash_banks`` per cycle. The first bank-load
        is covered by the pipeline depth itself (8 cycles); every
        further bank-load adds an issue cycle — reproducing the
        paper's span exactly: ≤2 signatures finish in 8 cycles, all 16
        take 16/2 + 8 = 16. A line with no signatures still pays one
        drain pass."""
        if signature_count <= self.hash_banks:
            return self.per_signature_latency
        issue_cycles = -(-signature_count // self.hash_banks)
        return issue_cycles + self.per_signature_latency

    def worst_case_cycles(self, config: CableConfig) -> int:
        """The Table IV charge: every word yields a signature."""
        return self.search_cycles(config.max_signatures)

    def best_case_cycles(self) -> int:
        return self.search_cycles(1)

    def measured_cycles(self, extractor: SignatureExtractor, line: bytes) -> int:
        """Search latency for a concrete line's actual signatures."""
        return self.search_cycles(len(extractor.search_signatures(line)))


def end_to_end_cycles(
    config: CableConfig,
    pipeline: SearchPipelineModel = SearchPipelineModel(),
    compression_rate_bytes_per_cycle: int = 8,
) -> dict:
    """The §IV-D latency budget: search + dictionary build + DIFF
    coding on each side at 8B/cycle (CPACK-class engines).

    Returns the component budget; the paper's totals are 16 (search) +
    8 + 8 (compress) + 8 + 8 (decompress) = 48 cycles.
    """
    dictionary_cycles = config.line_bytes // compression_rate_bytes_per_cycle
    code_cycles = config.line_bytes // compression_rate_bytes_per_cycle
    search = pipeline.worst_case_cycles(config)
    return {
        "search": search,
        "compress": dictionary_cycles + code_cycles,
        "decompress": dictionary_cycles + code_cycles,
        "total": search + 2 * (dictionary_cycles + code_cycles),
    }
