"""Signature extraction (§III-A).

A *signature* is a 32-bit hash of a sampled 32-bit data word that
stands in for the whole cache line when searching for similar lines.
The extraction rules from the paper:

- Index time: sample at the configured default offsets (Fig 5, e.g.
  bytes 0 and 32), sliding each offset forward in 4-byte steps while
  the word there is *trivial* (≥24 leading zeros or ones, Fig 6).
- Search time: extract a signature from every non-trivial word of the
  requested line — up to 16 for a 64-byte line — so any overlap with
  an indexed line's two signatures is found regardless of where the
  common content sits.
- Words hash through H3 (Carter & Wegman), the same simple, hardware-
  friendly universal hash the authors implemented in OpenPiton.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import CableConfig
from repro.util.rng import make_rng
from repro.util.words import bytes_to_words, is_trivial_word


class H3Hash:
    """H3 universal hash family over 32-bit words.

    ``h(x) = XOR of q[i] for every set bit i of x`` with a fixed random
    matrix ``q``. One XOR tree per output bit in hardware; a table walk
    here.
    """

    def __init__(self, seed: int, width_bits: int = 32) -> None:
        rng = make_rng(seed, "h3-matrix")
        self.width_bits = width_bits
        self._matrix: Tuple[int, ...] = tuple(
            rng.getrandbits(width_bits) for _ in range(32)
        )

    def __call__(self, word: int) -> int:
        result = 0
        bit = 0
        word &= 0xFFFFFFFF
        while word:
            if word & 1:
                result ^= self._matrix[bit]
            word >>= 1
            bit += 1
        return result


class SignatureExtractor:
    """Implements the paper's index-time and search-time extraction."""

    def __init__(self, config: CableConfig) -> None:
        self.config = config
        self.hash = H3Hash(config.hash_seed)

    # ------------------------------------------------------------------
    # Index-time: the signatures inserted into the hash table
    # ------------------------------------------------------------------

    def index_signatures(self, line: bytes) -> List[int]:
        """Signatures to insert for *line* (deduplicated, order kept).

        Each configured offset advances word-by-word past trivial words
        (wrapping within the line); a fully-trivial line yields no
        signatures and is simply not indexed — zero lines compress
        perfectly without references anyway.
        """
        words = bytes_to_words(line)
        signatures: List[int] = []
        seen = set()
        threshold = self.config.trivial_threshold_bits
        for offset in self.config.signature_offsets[: self.config.signatures_per_line]:
            start = offset // 4
            chosen = None
            for step in range(len(words)):
                word = words[(start + step) % len(words)]
                if not is_trivial_word(word, threshold):
                    chosen = word
                    break
            if chosen is None:
                continue
            sig = self.hash(chosen)
            if sig not in seen:
                seen.add(sig)
                signatures.append(sig)
        # If the line has fewer distinct non-trivial words than offsets
        # the dedup above may under-fill; that is fine and matches the
        # "often much less" remark in §III-C.
        return signatures

    # ------------------------------------------------------------------
    # Search-time: all candidate signatures of the requested line
    # ------------------------------------------------------------------

    def search_signatures(self, line: bytes) -> List[int]:
        """One signature per distinct non-trivial word, line order."""
        words = bytes_to_words(line)
        threshold = self.config.trivial_threshold_bits
        signatures: List[int] = []
        seen = set()
        for word in words:
            if is_trivial_word(word, threshold):
                continue
            sig = self.hash(word)
            if sig not in seen:
                seen.add(sig)
                signatures.append(sig)
        return signatures

    def nontrivial_word_count(self, line: bytes) -> int:
        threshold = self.config.trivial_threshold_bits
        return sum(
            0 if is_trivial_word(w, threshold) else 1 for w in bytes_to_words(line)
        )
