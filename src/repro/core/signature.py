"""Signature extraction (§III-A).

A *signature* is a 32-bit hash of a sampled 32-bit data word that
stands in for the whole cache line when searching for similar lines.
The extraction rules from the paper:

- Index time: sample at the configured default offsets (Fig 5, e.g.
  bytes 0 and 32), sliding each offset forward in 4-byte steps while
  the word there is *trivial* (≥24 leading zeros or ones, Fig 6).
- Search time: extract a signature from every non-trivial word of the
  requested line — up to 16 for a 64-byte line — so any overlap with
  an indexed line's two signatures is found regardless of where the
  common content sits.
- Words hash through H3 (Carter & Wegman), the same simple, hardware-
  friendly universal hash the authors implemented in OpenPiton.

Both extraction entry points are memoized per line contents: the same
immutable line is indexed on fill, searched on encode, and re-hashed on
every invalidation, so the per-line work is paid once. The caches are
per-extractor (they depend on the hash seed, the offsets and the
trivial threshold) and LRU-bounded.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import CableConfig
from repro.util.kernels import (
    BatchLines,
    batch_backend,
    get_numpy,
    line_words,
    popcount32,
    trivial_mask,
)
from repro.util.rng import make_rng

#: Bound on the per-extractor signature memo caches.
_SIGNATURE_CACHE_SIZE = 8192


class H3Hash:
    """H3 universal hash family over 32-bit words.

    ``h(x) = XOR of q[i] for every set bit i of x`` with a fixed random
    matrix ``q``. One XOR tree per output bit in hardware; here the
    matrix is folded into four 256-entry byte tables at construction, so
    hashing a word is 4 lookups + 3 XORs instead of a 32-iteration bit
    loop. :meth:`hash_bitwise` keeps the textbook bit-serial form as the
    equivalence reference.
    """

    def __init__(self, seed: int, width_bits: int = 32) -> None:
        rng = make_rng(seed, "h3-matrix")
        self.width_bits = width_bits
        self._matrix: Tuple[int, ...] = tuple(
            rng.getrandbits(width_bits) for _ in range(32)
        )
        self._tables: Tuple[Tuple[int, ...], ...] = tuple(
            self._build_table(byte_pos) for byte_pos in range(4)
        )
        # Numpy mirror of the byte tables for whole-matrix hashing.
        np = get_numpy()
        self._np_tables = (
            np.array(self._tables, dtype=np.uint32) if np is not None else None
        )

    def _build_table(self, byte_pos: int) -> Tuple[int, ...]:
        """XOR-fold the 8 matrix rows of one input byte over all 256
        byte values: ``table[v] = XOR of rows[i] for set bits i of v``."""
        rows = self._matrix[byte_pos * 8 : (byte_pos + 1) * 8]
        table = [0] * 256
        for value in range(1, 256):
            low = value & -value
            table[value] = table[value ^ low] ^ rows[low.bit_length() - 1]
        return tuple(table)

    def __call__(self, word: int) -> int:
        word &= 0xFFFFFFFF
        tables = self._tables
        return (
            tables[0][word & 0xFF]
            ^ tables[1][(word >> 8) & 0xFF]
            ^ tables[2][(word >> 16) & 0xFF]
            ^ tables[3][word >> 24]
        )

    def hash_matrix(self, words):
        """Hash a whole uint32 numpy matrix of words at once.

        Same four-table XOR as :meth:`__call__`, lifted to the array:
        every element of the result equals ``self(int(word))``.
        """
        tables = self._np_tables
        return (
            tables[0][words & 0xFF]
            ^ tables[1][(words >> 8) & 0xFF]
            ^ tables[2][(words >> 16) & 0xFF]
            ^ tables[3][words >> 24]
        )

    def hash_bitwise(self, word: int) -> int:
        """The original bit-serial H3 walk (reference implementation)."""
        result = 0
        bit = 0
        word &= 0xFFFFFFFF
        while word:
            if word & 1:
                result ^= self._matrix[bit]
            word >>= 1
            bit += 1
        return result


class SignatureExtractor:
    """Implements the paper's index-time and search-time extraction."""

    def __init__(self, config: CableConfig) -> None:
        self.config = config
        self.hash = H3Hash(config.hash_seed)
        # Per-instance memoization: results depend on this extractor's
        # seed/offsets/threshold, so the caches cannot be module-level.
        # Plain dicts rather than lru_cache so the *batched* extraction
        # below can fill them wholesale; bounded by dropping the oldest
        # half (insertion order) when full.
        self._index_memo: Dict[bytes, Tuple[int, ...]] = {}
        self._search_memo: Dict[bytes, Tuple[int, ...]] = {}

    @staticmethod
    def _remember(
        memo: Dict[bytes, Tuple[int, ...]], line: bytes, sigs: Tuple[int, ...]
    ) -> None:
        if len(memo) >= _SIGNATURE_CACHE_SIZE:
            for stale in list(islice(iter(memo), _SIGNATURE_CACHE_SIZE // 2)):
                del memo[stale]
        memo[line] = sigs

    # ------------------------------------------------------------------
    # Index-time: the signatures inserted into the hash table
    # ------------------------------------------------------------------

    def index_signatures(self, line: bytes) -> List[int]:
        """Signatures to insert for *line* (deduplicated, order kept).

        Each configured offset advances word-by-word past trivial words
        (wrapping within the line); a fully-trivial line yields no
        signatures and is simply not indexed — zero lines compress
        perfectly without references anyway.
        """
        sigs = self._index_memo.get(line)
        if sigs is None:
            sigs = self._index_signatures_uncached(line)
            self._remember(self._index_memo, line, sigs)
        return list(sigs)

    def _index_signatures_uncached(self, line: bytes) -> Tuple[int, ...]:
        words = line_words(line)
        tmask = trivial_mask(line, self.config.trivial_threshold_bits)
        signatures: List[int] = []
        seen = set()
        count = len(words)
        for offset in self.config.signature_offsets[: self.config.signatures_per_line]:
            start = offset // 4
            chosen = None
            for step in range(count):
                index = (start + step) % count
                if not (tmask >> index) & 1:
                    chosen = words[index]
                    break
            if chosen is None:
                continue
            sig = self.hash(chosen)
            if sig not in seen:
                seen.add(sig)
                signatures.append(sig)
        # If the line has fewer distinct non-trivial words than offsets
        # the dedup above may under-fill; that is fine and matches the
        # "often much less" remark in §III-C.
        return tuple(signatures)

    # ------------------------------------------------------------------
    # Search-time: all candidate signatures of the requested line
    # ------------------------------------------------------------------

    def search_signatures(self, line: bytes) -> List[int]:
        """One signature per distinct non-trivial word, line order."""
        sigs = self._search_memo.get(line)
        if sigs is None:
            sigs = self._search_signatures_uncached(line)
            self._remember(self._search_memo, line, sigs)
        return list(sigs)

    def _search_signatures_uncached(self, line: bytes) -> Tuple[int, ...]:
        words = line_words(line)
        tmask = trivial_mask(line, self.config.trivial_threshold_bits)
        hash_word = self.hash
        signatures: List[int] = []
        seen = set()
        if tmask == 0:
            candidates = words
        else:
            candidates = [
                word for i, word in enumerate(words) if not (tmask >> i) & 1
            ]
        for word in candidates:
            sig = hash_word(word)
            if sig not in seen:
                seen.add(sig)
                signatures.append(sig)
        return tuple(signatures)

    # ------------------------------------------------------------------
    # Batched extraction (whole blocks of lines at once)
    # ------------------------------------------------------------------

    def search_signatures_batch(
        self, lines: Sequence[bytes], backend: Optional[str] = None
    ) -> List[Tuple[int, ...]]:
        """Search-time signatures for a whole block of lines.

        Equivalent to ``[tuple(self.search_signatures(l)) for l in
        lines]``: memo hits are returned directly, and the misses are
        hashed together through one :class:`BatchLines` matrix on the
        numpy leg (scalar per line on the pure leg).
        """
        memo = self._search_memo
        out: List[Optional[Tuple[int, ...]]] = []
        missing: Dict[bytes, None] = {}
        for line in lines:
            sigs = memo.get(line)
            out.append(sigs)
            if sigs is None:
                missing[line] = None
        if missing:
            computed = self._extract_block(list(missing), backend, index=False)
            for i, line in enumerate(lines):
                if out[i] is None:
                    out[i] = computed[line][1]
        return out

    def warm_batch(self, lines: Sequence[bytes], backend: Optional[str] = None) -> int:
        """Precompute index- and search-time memo entries for *lines*.

        The look-ahead prefetch of the batch feeds: extraction is pure
        per-line work (no encoder state involved), so it can be paid in
        one vectorized pass before the scalar pipeline consumes the
        lines. Returns how many distinct lines were newly extracted.
        """
        fresh = [
            line
            for line in dict.fromkeys(lines)
            if line not in self._search_memo or line not in self._index_memo
        ]
        if fresh:
            self._extract_block(fresh, backend, index=True)
        return len(fresh)

    def _extract_block(
        self, unique_lines: List[bytes], backend: Optional[str], index: bool
    ) -> Dict[bytes, Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """Extract (index_sigs, search_sigs) for distinct lines.

        One hash pass feeds both extraction rules; *index* skips the
        index-time walk when only search signatures are wanted.
        """
        resolved: Dict[bytes, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        vectorized = (
            batch_backend(backend) == "numpy"
            and len({len(line) for line in unique_lines}) == 1
        )
        if vectorized:
            batch = BatchLines(
                unique_lines, self.config.trivial_threshold_bits, "numpy"
            )
            rows = self.hash.hash_matrix(batch.words).tolist()
            for line, row, tmask in zip(unique_lines, rows, batch.tmasks):
                search_sigs = self._search_from_row(row, tmask)
                index_sigs = self._index_from_row(row, tmask) if index else ()
                self._remember(self._search_memo, line, search_sigs)
                if index:
                    self._remember(self._index_memo, line, index_sigs)
                resolved[line] = (index_sigs, search_sigs)
        else:
            for line in unique_lines:
                search_sigs = self._search_signatures_uncached(line)
                index_sigs = self._index_signatures_uncached(line) if index else ()
                self._remember(self._search_memo, line, search_sigs)
                if index:
                    self._remember(self._index_memo, line, index_sigs)
                resolved[line] = (index_sigs, search_sigs)
        return resolved

    def _search_from_row(self, row: List[int], tmask: int) -> Tuple[int, ...]:
        """Search-rule dedup over a pre-hashed word row."""
        signatures: List[int] = []
        seen = set()
        for i, sig in enumerate(row):
            if (tmask >> i) & 1:
                continue
            if sig not in seen:
                seen.add(sig)
                signatures.append(sig)
        return tuple(signatures)

    def _index_from_row(self, row: List[int], tmask: int) -> Tuple[int, ...]:
        """Index-rule offset walk over a pre-hashed word row."""
        count = len(row)
        signatures: List[int] = []
        seen = set()
        for offset in self.config.signature_offsets[: self.config.signatures_per_line]:
            start = offset // 4
            chosen = None
            for step in range(count):
                word_index = (start + step) % count
                if not (tmask >> word_index) & 1:
                    chosen = row[word_index]
                    break
            if chosen is None:
                continue
            if chosen not in seen:
                seen.add(chosen)
                signatures.append(chosen)
        return tuple(signatures)

    def nontrivial_word_count(self, line: bytes) -> int:
        tmask = trivial_mask(line, self.config.trivial_threshold_bits)
        return len(line) // 4 - popcount32(tmask)
