"""CABLE link endpoints: the home encoder and the remote decoder.

The home encoder owns the structures Fig 4 places at the home cache —
the signature hash table, the WMT and the search pipeline — and turns
outbound lines into :class:`~repro.core.payload.Payload` objects. The
remote decoder owns the remote-side hash table (used for write-back
compression, §III-G) and the eviction buffer, and reconstructs lines
from payloads by reading its own data array.

:class:`CableLinkPair` bundles both endpoints around an
:class:`~repro.cache.hierarchy.InclusivePair` and keeps them
synchronized through the pair's coherence events (see
:mod:`repro.core.sync`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from time import perf_counter_ns
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cache.hierarchy import InclusivePair, TransferEvent
from repro.cache.setassoc import LineId, SetAssociativeCache
from repro.compression.base import ReferenceCompressor
from repro.compression.registry import make_engine
from repro.core.config import CableConfig
from repro.core.errors import DecompressionError, StaleReferenceError
from repro.core.evictbuf import EvictionBuffer
from repro.core.hashtable import SignatureHashTable
from repro.core.payload import Payload, PayloadKind, choose_payload
from repro.core.search import SearchPipeline, SearchResult
from repro.core.signature import SignatureExtractor
from repro.core.wmt import WayMapTable
from repro.link.recovery import Delivery, RecoveryLayer
from repro.link.wire import wire_format_for
from repro.obs.registry import METRICS
from repro.obs.report import publish_kernel_gauges
from repro.obs.tracer import trace

__all__ = [
    "CableHomeEncoder",
    "CableLinkPair",
    "CableRemoteDecoder",
    "DecompressionError",  # canonical home is repro.core.errors
    "EncodeOutcome",
    "FailoverOutcome",
    "TransferRecord",
]


@dataclass(frozen=True)
class FailoverOutcome:
    """What one standby promotion achieved."""

    #: True when both sides promoted replay-grade (clean standby, no
    #: backlog lost); False when the auditor had to reconcile.
    hot: bool
    #: Journaled records the asynchronous replication lag cost us.
    lost_records: int


def _make_reference_engine(name: str) -> ReferenceCompressor:
    engine = make_engine(name)
    if not isinstance(engine, ReferenceCompressor):
        raise ValueError(f"engine {name!r} cannot be seeded with references")
    return engine


@dataclass
class EncodeOutcome:
    """A payload plus the search diagnostics that produced it."""

    payload: Payload
    search: Optional[SearchResult] = None

    @property
    def size_bits(self) -> int:
        return self.payload.size_bits


class CableHomeEncoder:
    """Home-side endpoint: search, compress, point, transmit."""

    def __init__(
        self,
        config: CableConfig,
        home_cache: SetAssociativeCache,
        remote_geometry,
    ) -> None:
        self.config = config
        self.home_cache = home_cache
        self.extractor = SignatureExtractor(config)
        self.hash_table = SignatureHashTable.sized_for(
            home_cache.geometry.lines,
            scale=config.hash_table_scale,
            bucket_entries=config.hash_bucket_entries,
        )
        self.wmt = WayMapTable(home_cache.geometry, remote_geometry)
        self.engine = _make_reference_engine(config.engine)
        self.pipeline = SearchPipeline(
            config,
            self.extractor,
            self.hash_table,
            home_cache,
            self._referencable,
            referencable_replay=self.wmt.replay_translation,
            # Referencability is a pure function of WMT contents, so the
            # WMT generation witnesses it for the cross-block cache.
            referencable_generation=lambda: self.wmt.generation,
        )
        self.stats = {
            "encodes": 0,
            "with_references": 0,
            "no_reference": 0,
            "uncompressed": 0,
            "reference_count": 0,
        }
        self._obs = METRICS
        self._stage_encode = METRICS.stage("encode.fill")
        self._stage_diff = METRICS.stage("encode.diff")
        self._stage_index = METRICS.stage("signature.index")
        self._stage_decode_wb = METRICS.stage("decode.writeback")
        self._ctr_kinds = {
            kind.value: METRICS.counter(f"encode.kind.{kind.value}")
            for kind in PayloadKind
        }
        self._ctr_indexed = METRICS.counter("signature.lines_indexed")
        publish_kernel_gauges(block_size=config.batch_block_size)

    def _referencable(self, home_lid: LineId) -> Optional[LineId]:
        """A home line is referencable iff the WMT proves it resides in
        the remote cache (state checks happen in the search pipeline)."""
        return self.wmt.remote_lid_for(home_lid)

    # ------------------------------------------------------------------
    # Compression path (home → remote)
    # ------------------------------------------------------------------

    def encode(
        self, line_addr: int, data: bytes, home_lid: Optional[LineId]
    ) -> EncodeOutcome:
        """Compress one outbound line.

        ``home_lid`` excludes the line's own slot from the reference
        search; pass None when the line is not resident (should not
        happen on the fill path of an inclusive hierarchy).
        """
        enabled = self._obs.enabled
        if enabled:
            t0 = perf_counter_ns()
        search = self.pipeline.search(data, exclude=home_lid)
        if enabled:
            t1 = perf_counter_ns()
        no_ref = self.engine.compress_with_references(data, ())
        with_refs = None
        if search.references:
            refs = search.references
            block = self.engine.compress_with_references(
                data, [r.data for r in refs]
            )
            with_refs = (
                block,
                tuple(r.remote_lid for r in refs),
                tuple(r.line_addr for r in refs),
            )
        if enabled:
            self._stage_diff.observe(perf_counter_ns() - t1)
        payload = choose_payload(
            line_addr,
            data,
            with_refs,
            no_ref,
            self.config.no_reference_threshold,
            self.config.remotelid_bits,
        )
        self.stats["encodes"] += 1
        self.stats[payload.kind.value] += 1
        self.stats["reference_count"] += len(payload.remote_lids)
        if enabled:
            self._stage_encode.observe(perf_counter_ns() - t0)
            self._ctr_kinds[payload.kind.value].inc()
        return EncodeOutcome(payload=payload, search=search)

    def encode_batch(
        self,
        items: Sequence[Tuple[int, bytes, Optional[LineId]]],
        block_size: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> List[EncodeOutcome]:
        """Compress a block of outbound lines at once.

        *items* are ``(line_addr, data, home_lid)`` triples — the same
        arguments :meth:`encode` takes — processed in blocks of
        *block_size* lines (default: ``config.batch_block_size``).
        Byte-identical to calling :meth:`encode` per item, including
        every stats side effect; only throughput differs. *backend*
        pins the batch-kernel leg for tests.
        """
        config = self.config
        if block_size is None:
            block_size = config.batch_block_size
        threshold = config.no_reference_threshold
        remotelid_bits = config.remotelid_bits
        compress = self.engine.compress_with_references
        search_batch = self.pipeline.search_batch
        stats = self.stats
        enabled = self._obs.enabled
        outcomes: List[EncodeOutcome] = []
        for start in range(0, len(items), block_size):
            block_items = items[start : start + block_size]
            searches = search_batch(
                [item[1] for item in block_items],
                [item[2] for item in block_items],
                backend=backend,
            )
            encodes = 0
            reference_count = 0
            kind_counts = {kind: 0 for kind in PayloadKind}
            for (line_addr, data, _home_lid), search in zip(block_items, searches):
                no_ref = compress(data, ())
                with_refs = None
                refs = search.references
                if refs:
                    block = compress(data, [r.data for r in refs])
                    with_refs = (
                        block,
                        tuple(r.remote_lid for r in refs),
                        tuple(r.line_addr for r in refs),
                    )
                payload = choose_payload(
                    line_addr, data, with_refs, no_ref, threshold, remotelid_bits
                )
                encodes += 1
                kind_counts[payload.kind] += 1
                reference_count += len(payload.remote_lids)
                if enabled:
                    self._ctr_kinds[payload.kind.value].inc()
                outcomes.append(EncodeOutcome(payload=payload, search=search))
            stats["encodes"] += encodes
            stats["reference_count"] += reference_count
            for kind, kind_count in kind_counts.items():
                if kind_count:
                    stats[kind.value] += kind_count
        return outcomes

    # ------------------------------------------------------------------
    # Write-back path (remote → home): decode using the WMT
    # ------------------------------------------------------------------

    def decode_writeback(self, payload: Payload) -> bytes:
        """Reconstruct a written-back line from remote-LID pointers.

        The remote cache has no WMT; it sends its own LineIDs, which
        the home cache translates through its WMT to locate the
        reference data in its own array (§III-G).
        """
        if payload.kind is PayloadKind.UNCOMPRESSED:
            return payload.raw
        enabled = self._obs.enabled
        if enabled:
            t0 = perf_counter_ns()
        references: List[bytes] = []
        for i, remote_lid in enumerate(payload.remote_lids):
            home_lid = self.wmt.home_lid_for(remote_lid)
            if home_lid is None:
                raise StaleReferenceError(
                    f"write-back reference {remote_lid} is not tracked in the WMT"
                )
            line = self.home_cache.read_by_lineid(home_lid)
            if line is None:
                raise StaleReferenceError(
                    f"WMT points at an empty home slot {home_lid}"
                )
            if payload.ref_addrs and line.tag != payload.ref_addrs[i]:
                raise StaleReferenceError(
                    "write-back reference desynchronized: "
                    f"expected line {payload.ref_addrs[i]:#x}, found {line.tag:#x}"
                )
            references.append(line.data)
        data = self.engine.decompress_with_references(payload.block, references)
        if enabled:
            self._stage_decode_wb.observe(perf_counter_ns() - t0)
        return data

    # ------------------------------------------------------------------
    # Synchronization hooks (driven by repro.core.sync)
    # ------------------------------------------------------------------

    def on_fill_sent(self, event: TransferEvent) -> None:
        """After a fill leaves: index shared lines, update the WMT."""
        displaced = self.wmt.install(event.home_lid, event.remote_lid)
        if displaced is not None:
            # Way-replacement info said this slot held another of our
            # lines; scrub its signatures (normally the remote_evict
            # event has already done this — belt and braces).
            self.invalidate_home_line(displaced, data=None)
        if event.state is not None and event.state.usable_as_reference:
            enabled = self._obs.enabled
            if enabled:
                t0 = perf_counter_ns()
            for signature in self.extractor.index_signatures(event.data):
                self.hash_table.insert(signature, event.home_lid)
            if enabled:
                self._stage_index.observe(perf_counter_ns() - t0)
                self._ctr_indexed.inc()

    def on_remote_evict(self, event: TransferEvent) -> None:
        """The remote lost a line: WMT slot out, signatures out."""
        home_lid = self.wmt.invalidate_remote(event.remote_lid)
        if home_lid is not None:
            self.invalidate_home_line(home_lid, data=event.data)

    def on_upgrade(self, event: TransferEvent) -> None:
        """Shared→Modified: the home copy is stale; forget it."""
        self.invalidate_home_line(event.home_lid, data=event.data)

    def on_home_evict(self, event: TransferEvent) -> None:
        if event.home_lid is not None:
            self.invalidate_home_line(event.home_lid, data=event.data)
            self.wmt.invalidate_home(event.home_lid)

    def invalidate_home_line(self, home_lid: LineId, data: Optional[bytes]) -> None:
        """Remove a line's signatures from the hash table (§III-F).

        Recomputes the index-time signatures from the line's data and
        removes the LineID from those buckets. Staleness is tolerated:
        a missed removal only leaves a harmless stale candidate that
        the search pipeline will reject by CBV/WMT checks.
        """
        if data is None:
            cached = self.home_cache.read_by_lineid(home_lid)
            if cached is None:
                self.hash_table.remove_lineid_everywhere(home_lid)
                return
            data = cached.data
        for signature in self.extractor.index_signatures(data):
            self.hash_table.remove(signature, home_lid)


class CableRemoteDecoder:
    """Remote-side endpoint: decompress fills, compress write-backs."""

    def __init__(self, config: CableConfig, remote_cache: SetAssociativeCache) -> None:
        self.config = config
        self.remote_cache = remote_cache
        self.extractor = SignatureExtractor(config)
        self.hash_table = SignatureHashTable.sized_for(
            remote_cache.geometry.lines,
            scale=config.hash_table_scale,
            bucket_entries=config.hash_bucket_entries,
        )
        self.engine = _make_reference_engine(config.engine)
        self.evict_buffer = EvictionBuffer(
            config.eviction_buffer_entries, config.eviction_buffer_policy
        )
        self.pipeline = SearchPipeline(
            config,
            self.extractor,
            self.hash_table,
            remote_cache,
            self._referencable,
            # The identity translation is stateless: a constant
            # generation keeps the cross-block cache valid forever.
            referencable_generation=lambda: 0,
        )
        self.stats = {"decodes": 0, "rescued_references": 0, "writeback_encodes": 0}
        self._obs = METRICS
        self._stage_decode = METRICS.stage("decode.fill")
        self._stage_encode_wb = METRICS.stage("encode.writeback")
        self._stage_diff = METRICS.stage("encode.diff")
        self._ctr_rescued = METRICS.counter("decode.rescued_references")

    def _referencable(self, remote_lid: LineId) -> Optional[LineId]:
        """For write-back search the remote references its own slots;
        inclusivity guarantees the home cache also holds them."""
        return remote_lid

    # ------------------------------------------------------------------
    # Decompression path (home → remote)
    # ------------------------------------------------------------------

    def decode(self, payload: Payload) -> bytes:
        self.stats["decodes"] += 1
        if payload.kind is PayloadKind.UNCOMPRESSED:
            return payload.raw
        enabled = self._obs.enabled
        if enabled:
            t0 = perf_counter_ns()
        references: List[bytes] = []
        for i, remote_lid in enumerate(payload.remote_lids):
            references.append(self._read_reference(payload, i, remote_lid))
        data = self.engine.decompress_with_references(payload.block, references)
        if enabled:
            self._stage_decode.observe(perf_counter_ns() - t0)
        return data

    def _read_reference(self, payload: Payload, i: int, remote_lid: LineId) -> bytes:
        line = self.remote_cache.read_by_lineid(remote_lid)
        expected_addr = payload.ref_addrs[i] if payload.ref_addrs else None
        if line is not None and (expected_addr is None or line.tag == expected_addr):
            return line.data
        # Race (§IV-A): the reference was evicted while the response
        # was in flight — recover it from the eviction buffer.
        if expected_addr is not None:
            rescued = self.evict_buffer.rescue(remote_lid, expected_addr)
            if rescued is not None:
                self.stats["rescued_references"] += 1
                if self._obs.enabled:
                    self._ctr_rescued.inc()
                return rescued
        raise StaleReferenceError(
            f"reference {remote_lid} missing from remote cache and eviction buffer"
        )

    # ------------------------------------------------------------------
    # Write-back compression (remote → home, §III-G)
    # ------------------------------------------------------------------

    def encode_writeback(self, line_addr: int, data: bytes, remote_lid) -> EncodeOutcome:
        self.stats["writeback_encodes"] += 1
        enabled = self._obs.enabled
        if enabled:
            t0 = perf_counter_ns()
        search = self.pipeline.search(data, exclude=remote_lid)
        if enabled:
            t1 = perf_counter_ns()
        no_ref = self.engine.compress_with_references(data, ())
        with_refs = None
        if search.references:
            refs = search.references
            block = self.engine.compress_with_references(data, [r.data for r in refs])
            with_refs = (
                block,
                tuple(r.remote_lid for r in refs),
                tuple(r.line_addr for r in refs),
            )
        if enabled:
            self._stage_diff.observe(perf_counter_ns() - t1)
        payload = choose_payload(
            line_addr,
            data,
            with_refs,
            no_ref,
            self.config.no_reference_threshold,
            self.config.remotelid_bits,
        )
        if enabled:
            self._stage_encode_wb.observe(perf_counter_ns() - t0)
        return EncodeOutcome(payload=payload, search=search)

    # ------------------------------------------------------------------
    # Synchronization hooks
    # ------------------------------------------------------------------

    def on_fill_received(self, event: TransferEvent) -> None:
        """Index newly received shared lines for write-back search."""
        if event.state is not None and event.state.usable_as_reference:
            for signature in self.extractor.index_signatures(event.data):
                self.hash_table.insert(signature, event.remote_lid)

    def on_remote_evict(self, event: TransferEvent) -> None:
        self.evict_buffer.record(event.remote_lid, event.line_addr, event.data)
        for signature in self.extractor.index_signatures(event.data):
            self.hash_table.remove(signature, event.remote_lid)

    def on_upgrade(self, event: TransferEvent) -> None:
        for signature in self.extractor.index_signatures(event.data):
            self.hash_table.remove(signature, event.remote_lid)


@dataclass
class TransferRecord:
    """Link accounting for one transfer."""

    direction: str  # "fill" or "writeback"
    line_addr: int
    payload: Payload
    search: Optional[SearchResult] = None

    @property
    def size_bits(self) -> int:
        return self.payload.size_bits


class CableLinkPair:
    """Both CABLE endpoints wired around an inclusive cache pair.

    Drive it with :meth:`access`; every fill and write-back is
    compressed, transmitted, decompressed and *verified* against the
    original data — a failed verification raises
    :class:`DecompressionError` and indicates a synchronization bug.
    """

    def __init__(
        self,
        config: CableConfig,
        pair: InclusivePair,
        verify: bool = True,
        enabled: bool = True,
        silent_evictions: bool = False,
        breaker_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """``silent_evictions`` models §IV-B's 1-to-1 / linearly
        interleaved configurations: the remote never sends explicit
        eviction notices for fill displacements; the home tracks them
        purely from the way-replacement info embedded in each request
        (the WMT-displacement path of ``on_fill_sent``).

        ``breaker_clock`` is forwarded to the circuit breaker so
        campaigns can pin breaker cooldowns to a deterministic
        simulated clock instead of wall time.
        """
        self.config = config
        self.pair = pair
        self.verify = verify
        self.enabled = enabled
        self.silent_evictions = silent_evictions
        self.home_encoder = CableHomeEncoder(
            config, pair.home, pair.remote.geometry
        )
        self.remote_decoder = CableRemoteDecoder(config, pair.remote)
        self.transfers: List[TransferRecord] = []
        self.keep_transfers = True
        self.totals = {
            "fill_bits": 0,
            "writeback_bits": 0,
            "raw_bits": 0,
            "overhead_bits": 0,
            "fills": 0,
            "writebacks": 0,
        }
        self._obs = METRICS
        self._ctr_transfers = {
            direction: METRICS.counter(f"link.{direction}s")
            for direction in ("fill", "writeback")
        }
        self._ctr_payload_bits = METRICS.counter("link.payload_bits")
        self._ctr_raw_bits = METRICS.counter("link.raw_bits")
        # Lossy-link mode: a FaultPlan, RecoveryPolicy or
        # DurabilityPolicy on the config switches transfers onto the
        # framed wire path with NACK/retransmit recovery
        # (repro.link.recovery).
        recovery = config.recovery
        if recovery is None and (
            (config.faults is not None and config.faults.any_faults)
            or config.durability is not None
        ):
            from repro.fault.plan import RecoveryPolicy

            recovery = RecoveryPolicy()
        self.recovery_layer: Optional[RecoveryLayer] = None
        if recovery is not None:
            fmt = wire_format_for(config, self.home_encoder.engine)
            self.recovery_layer = RecoveryLayer(
                recovery,
                fmt,
                config.engine,
                config.faults,
                breaker_clock=breaker_clock,
            )
            self.recovery_layer.bind(self)
        # Crash durability (repro.state): per-endpoint snapshot+journal
        # managers guarding the volatile mirrored metadata.
        self.home_state = None
        self.remote_state = None
        self._resync_session = None
        if config.durability is not None:
            self._arm_durability(config.durability)
        # Warm-standby replication (repro.replica): armed on demand via
        # arm_replication(); maps side -> Replicator.
        self.replicators = None
        pair.add_observer(self._on_event)

    def _arm_durability(self, policy) -> None:
        from repro.state.manager import EndpointStateManager

        home_geometry = self.pair.home.geometry
        homelid_bits = home_geometry.lineid_bits
        remotelid_bits = self.config.remotelid_bits
        costs = {
            "wmt_install": homelid_bits + remotelid_bits,
            "wmt_inval_remote": remotelid_bits,
            "wmt_inval_home": homelid_bits,
            "hash_insert": 32 + homelid_bits,
            "hash_remove": 32 + homelid_bits,
            "evict_record": 32 + remotelid_bits + 32,
            "evict_ack": 32,
        }
        self.home_state = EndpointStateManager(
            "home",
            policy,
            {
                "wmt": self.home_encoder.wmt,
                "hash": self.home_encoder.hash_table,
                "breaker": self.recovery_layer.breaker,
            },
            costs,
        )
        remote_costs = dict(costs)
        remote_costs["hash_insert"] = 32 + remotelid_bits
        remote_costs["hash_remove"] = 32 + remotelid_bits
        self.remote_state = EndpointStateManager(
            "remote",
            policy,
            {
                "hash": self.remote_decoder.hash_table,
                "evictbuf": self.remote_decoder.evict_buffer,
            },
            remote_costs,
        )
        self.home_state.attach()
        self.remote_state.attach()

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def _on_event(self, event: TransferEvent) -> None:
        if event.kind == "remote_evict":
            self.remote_decoder.on_remote_evict(event)
            if self.silent_evictions and event.displaced_addr is not None:
                # §IV-B: no explicit notice for fill displacements —
                # the home infers them from the request's
                # way-replacement info when the fill is processed.
                return
            self.home_encoder.on_remote_evict(event)
        elif event.kind == "fill":
            self._transfer_fill(event)
        elif event.kind == "writeback":
            self._transfer_writeback(event)
        elif event.kind == "upgrade":
            self.home_encoder.on_upgrade(event)
            self.remote_decoder.on_upgrade(event)
        elif event.kind == "home_evict":
            self.home_encoder.on_home_evict(event)

    def _transfer_fill(self, event: TransferEvent) -> None:
        if self.recovery_layer is not None:
            self._transfer_fill_reliable(event)
            return
        if self.enabled:
            outcome = self.home_encoder.encode(
                event.line_addr, event.data, event.home_lid
            )
            payload, search = outcome.payload, outcome.search
        else:
            payload = Payload(
                kind=PayloadKind.UNCOMPRESSED,
                line_addr=event.line_addr,
                line_bytes=len(event.data),
                raw=event.data,
                remotelid_bits=self.config.remotelid_bits,
            )
            search = None
        if self.verify:
            decoded = self.remote_decoder.decode(payload)
            if decoded != event.data:
                raise DecompressionError(
                    f"fill for line {event.line_addr:#x} decompressed incorrectly"
                )
        else:
            self.remote_decoder.stats["decodes"] += 1
        # Post-transfer synchronization (§III-F): both sides index the
        # line and the home side updates its WMT.
        self.home_encoder.on_fill_sent(event)
        self.remote_decoder.on_fill_received(event)
        self._account("fill", event, payload, search)

    def _transfer_writeback(self, event: TransferEvent) -> None:
        if self.recovery_layer is not None:
            self._transfer_writeback_reliable(event)
            return
        if self.enabled:
            outcome = self.remote_decoder.encode_writeback(
                event.line_addr, event.data, event.remote_lid
            )
            payload, search = outcome.payload, outcome.search
        else:
            payload = Payload(
                kind=PayloadKind.UNCOMPRESSED,
                line_addr=event.line_addr,
                line_bytes=len(event.data),
                raw=event.data,
                remotelid_bits=self.config.remotelid_bits,
            )
            search = None
        if self.verify and self.enabled:
            decoded = self.home_encoder.decode_writeback(payload)
            if decoded != event.data:
                raise DecompressionError(
                    f"write-back of line {event.line_addr:#x} decompressed incorrectly"
                )
        self._account("writeback", event, payload, search)

    # ------------------------------------------------------------------
    # Lossy-link transfers (repro.link.recovery)
    # ------------------------------------------------------------------

    def _raw_payload(self, event: TransferEvent) -> Payload:
        return Payload(
            kind=PayloadKind.UNCOMPRESSED,
            line_addr=event.line_addr,
            line_bytes=len(event.data),
            raw=event.data,
            remotelid_bits=self.config.remotelid_bits,
        )

    def _transfer_fill_reliable(self, event: TransferEvent) -> None:
        layer = self.recovery_layer
        search = None
        if not self.enabled or layer.breaker.is_open:
            payload = self._raw_payload(event)
            if layer.breaker.is_open:
                layer.health.bump("breaker_raw_transfers")
        else:
            outcome = self.home_encoder.encode(
                event.line_addr, event.data, event.home_lid
            )
            payload, search = outcome.payload, outcome.search
        delivery = layer.link.deliver(
            "fill",
            payload,
            self.remote_decoder.decode,
            lambda: self._raw_payload(event),
        )
        if self.verify and delivery.data != event.data:
            layer.health.bump("silent_corruptions")
            raise DecompressionError(
                f"fill for line {event.line_addr:#x} decompressed incorrectly"
            )
        self._breaker_tick(delivery)
        self.home_encoder.on_fill_sent(event)
        self.remote_decoder.on_fill_received(event)
        self._account("fill", event, delivery.payload, search)
        self.totals["overhead_bits"] += delivery.overhead_bits
        self._step_resync()

    def _transfer_writeback_reliable(self, event: TransferEvent) -> None:
        layer = self.recovery_layer
        search = None
        if not self.enabled or layer.breaker.is_open:
            payload = self._raw_payload(event)
            if layer.breaker.is_open:
                layer.health.bump("breaker_raw_transfers")
        else:
            outcome = self.remote_decoder.encode_writeback(
                event.line_addr, event.data, event.remote_lid
            )
            payload, search = outcome.payload, outcome.search
        delivery = layer.link.deliver(
            "writeback",
            payload,
            self.home_encoder.decode_writeback,
            lambda: self._raw_payload(event),
        )
        if self.verify and delivery.data != event.data:
            layer.health.bump("silent_corruptions")
            raise DecompressionError(
                f"write-back of line {event.line_addr:#x} decompressed incorrectly"
            )
        self._breaker_tick(delivery)
        self._account("writeback", event, delivery.payload, search)
        self.totals["overhead_bits"] += delivery.overhead_bits
        self._step_resync()

    def _breaker_tick(self, delivery: Delivery) -> None:
        """Feed one transfer outcome to the circuit breaker."""
        layer = self.recovery_layer
        breaker = layer.breaker
        if breaker.is_open:
            if breaker.tick_open():
                layer.health.bump("breaker_recoveries")
        elif breaker.record(not delivery.degraded):
            layer.health.bump("breaker_trips")
            if layer.policy.failover_on_trip and self.replicators:
                # A tripping primary is a failing primary: promote the
                # warm standby instead of limping through cooldown.
                self.failover()
            elif layer.policy.resync_on_trip:
                # A real link would retrain; the model re-audits and
                # repairs WMT/hash state so the post-cooldown window
                # starts from synchronized metadata.
                self.resync()

    def resync(self):
        """Audit and repair both endpoints' metadata (§III-F auditor).

        Returns the :class:`repro.core.sync.AuditReport`; when a
        recovery layer is active its health counters record the pass.
        """
        from repro.core.sync import audit  # lazy: sync imports this module

        with trace("link.resync"):
            report = audit(self, repair=True)
        if self.recovery_layer is not None:
            self.recovery_layer.health.bump("resyncs")
            self.recovery_layer.health.bump("resync_repairs", report.repairs)
        if report.repairs:
            # Bulk repairs bypass the journal hooks; re-baseline the
            # durability managers so a later replay starts from the
            # repaired image.
            for manager in (self.home_state, self.remote_state):
                if manager is not None:
                    manager.checkpoint()
        return report

    # ------------------------------------------------------------------
    # Crash / restart (repro.state + epoch resync)
    # ------------------------------------------------------------------

    #: Volatile structures wiped by a warm restart of each endpoint
    #: (cache data arrays survive; they are the ground truth).
    _VOLATILE = {
        "home": ("wmt", "hash", "breaker"),
        "remote": ("hash", "evictbuf"),
    }

    def crash_endpoint(self, side: str, sabotage=(), sabotage_rng=None) -> str:
        """Kill one endpoint's metadata mid-run and bring it back.

        *side* is ``"home"`` or ``"remote"``. *sabotage* lists
        persistent-store faults applied before the restart:
        ``"snapshot"`` (flip a byte of the newest snapshot, needs
        *sabotage_rng*), ``"journal_poison"`` (torn journal device) and
        ``"journal_tail"`` (silently lose the newest records).

        Returns the recovery path taken: ``"replay"`` (snapshot +
        journal replay verified by the epoch handshake), ``"rebuild"``
        (handshake refused the restore; incremental audit-rebuild) or
        ``"ground-truth"`` (no durability manager; stop-the-world
        rebuild from the cache arrays).
        """
        if side not in self._VOLATILE:
            raise ValueError(f"unknown endpoint {side!r}")
        layer = self.recovery_layer
        if layer is None:
            raise RuntimeError(
                "crash_endpoint requires the framed link "
                "(set config.durability, config.recovery or config.faults)"
            )
        layer.health.bump("endpoint_crashes")
        manager = self.home_state if side == "home" else self.remote_state
        expected = None
        if manager is not None:
            # What the peer knows: every journaled op rode a delivered
            # frame, so the pre-sabotage progress is the peer's view.
            expected = manager.expected_progress()
            for kind in sabotage:
                if kind == "snapshot":
                    manager.corrupt_newest_snapshot(sabotage_rng)
                elif kind == "journal_poison":
                    manager.poison_journal()
                elif kind == "journal_tail":
                    count = (
                        sabotage_rng.randrange(1, 9) if sabotage_rng else 4
                    )
                    manager.drop_journal_tail(count)
                else:
                    raise ValueError(f"unknown sabotage {kind!r}")
        self._wipe_volatile(side)
        if manager is None:
            return self._recover_ground_truth(side)
        from repro.link.recovery import EpochResync

        restored = manager.restore()
        handshake = EpochResync(layer.policy, layer.health)
        path = handshake.reconnect(
            (manager.expected_progress(), restored), expected
        )
        if path == "replay":
            return path
        # The handshake refused the restored image: drop it and rebuild
        # from ground truth, then re-baseline the manager.
        self._wipe_volatile(side)
        if side == "remote":
            self._rebuild_remote_metadata()
            manager.checkpoint()
        else:
            self._resync_session = self._make_resync_session()
        return path

    def _wipe_volatile(self, side: str) -> None:
        structures = {
            "wmt": self.home_encoder.wmt,
            "breaker": self.recovery_layer.breaker,
        }
        if side == "home":
            structures["hash"] = self.home_encoder.hash_table
        else:
            structures = {
                "hash": self.remote_decoder.hash_table,
                "evictbuf": self.remote_decoder.evict_buffer,
            }
        for name in self._VOLATILE[side]:
            structures[name].reset_state()

    def _make_resync_session(self):
        from repro.link.recovery import ResyncSession

        durability = self.config.durability
        chunk = durability.resync_chunk_sets if durability else 4
        return ResyncSession(self, self.recovery_layer.health, chunk)

    def _recover_ground_truth(self, side: str) -> str:
        """No durability manager: stop-the-world rebuild from the cache
        arrays — the baseline the snapshot+journal path is measured
        against."""
        self.recovery_layer.health.bump("full_rebuilds")
        if side == "remote":
            self._rebuild_remote_metadata()
        else:
            session = self._make_resync_session()
            while not session.step():
                pass
        return "ground-truth"

    def _rebuild_remote_metadata(self) -> None:
        """Reindex the remote hash table from the remote cache's own
        lines (local work — no link traffic). The eviction buffer
        stays cold: lost entries surface as failed rescues → RAW,
        never as silent corruption."""
        decoder = self.remote_decoder
        for remote_lid, line in self.pair.remote:
            if line.state is not None and line.state.usable_as_reference:
                for signature in decoder.extractor.index_signatures(line.data):
                    decoder.hash_table.insert(signature, remote_lid)

    def _step_resync(self) -> None:
        session = self._resync_session
        if session is None:
            return
        if session.step():
            self._resync_session = None
            if self.home_state is not None:
                self.home_state.checkpoint()

    def drain_resync(self) -> int:
        """Finish any in-flight incremental rebuild (end of run)."""
        steps = 0
        while self._resync_session is not None:
            self._step_resync()
            steps += 1
        return steps

    # ------------------------------------------------------------------
    # Online reconfiguration (repro.tune)
    # ------------------------------------------------------------------

    #: Config fields :meth:`apply_config` may change on a live pair.
    #: Everything else is baked into construction (cache geometry,
    #: fault/recovery/durability wiring, the H3 matrices behind
    #: ``hash_seed``) and would need a rebuild, not a knob turn.
    _TUNABLE = frozenset(
        {
            "signature_offsets",
            "signatures_per_line",
            "trivial_threshold_bits",
            "hash_table_scale",
            "hash_bucket_entries",
            "data_access_count",
            "max_references",
            "ranking_policy",
            "no_reference_threshold",
            "engine",
            "batch_block_size",
        }
    )
    #: Fields whose change invalidates memoized *index* signatures.
    _INDEX_MEMO_FIELDS = frozenset(
        {"signature_offsets", "signatures_per_line", "trivial_threshold_bits"}
    )
    #: Fields that re-shape the signature hash tables.
    _GEOMETRY_FIELDS = frozenset({"hash_table_scale", "hash_bucket_entries"})

    def apply_knobs(self, **overrides) -> frozenset:
        """Convenience wrapper: ``apply_config`` from keyword overrides."""
        return self.apply_config(self.config.with_overrides(**overrides))

    def apply_config(self, target: CableConfig) -> frozenset:
        """Switch the live pair to *target*'s knob settings.

        This is the single safe point for online tuning
        (:mod:`repro.tune`): callers invoke it only at epoch
        boundaries. The protocol, in order: flush any replication
        backlog (so the standby's journal ends at a consistent
        pre-change point), rebind the config on both endpoints and
        drop every config-derived memo, swap compressor engines (and
        the wire format with them), then re-shape and rebuild the hash
        tables from cache ground truth if the geometry moved — with
        journaling suspended, followed by a fresh checkpoint and
        standby reseed, exactly the bulk-mutation rule the durability
        managers document.

        Returns the set of field names that actually changed (empty
        when *target* equals the current config — a no-op).
        """
        changed = frozenset(
            f.name
            for f in fields(CableConfig)
            if getattr(target, f.name) != getattr(self.config, f.name)
        )
        if not changed:
            return changed
        illegal = changed - self._TUNABLE
        if illegal:
            raise ValueError(
                f"config fields {sorted(illegal)} cannot change on a live pair"
            )
        if self.replicators:
            for replicator in self.replicators.values():
                replicator.pump(force=True)
        self.config = target
        for endpoint in (self.home_encoder, self.remote_decoder):
            endpoint.config = target
            endpoint.extractor.config = target
            endpoint.pipeline.config = target
            if changed & self._INDEX_MEMO_FIELDS:
                endpoint.extractor._index_memo.clear()
            if "trivial_threshold_bits" in changed:
                endpoint.extractor._search_memo.clear()
            # The result cache's generation triple cannot witness a
            # config change — always drop it.
            endpoint.pipeline.invalidate_result_cache()
        if "engine" in changed:
            self.home_encoder.engine = _make_reference_engine(target.engine)
            self.remote_decoder.engine = _make_reference_engine(target.engine)
            if self.recovery_layer is not None:
                link = self.recovery_layer.link
                link.fmt = wire_format_for(target, self.home_encoder.engine)
                link.engine_name = target.engine
        if changed & self._GEOMETRY_FIELDS:
            self._reshape_hash_tables(target)
        return changed

    def _reshape_hash_tables(self, target: CableConfig) -> None:
        """Re-shape both signature hash tables and rebuild them from
        cache ground truth (local work, no link traffic)."""
        managers = [
            manager
            for manager in (self.home_state, self.remote_state)
            if manager is not None
        ]
        for manager in managers:
            manager.suspended = True
        try:
            self.home_encoder.hash_table.reconfigure(
                max(1, int(self.pair.home.geometry.lines * target.hash_table_scale)),
                target.hash_bucket_entries,
            )
            self.remote_decoder.hash_table.reconfigure(
                max(1, int(self.pair.remote.geometry.lines * target.hash_table_scale)),
                target.hash_bucket_entries,
            )
            self._rebuild_home_metadata()
            self._rebuild_remote_metadata()
        finally:
            for manager in managers:
                manager.suspended = False
        for manager in managers:
            manager.checkpoint()
        if self.replicators:
            for replicator in self.replicators.values():
                replicator.reseed()

    def _rebuild_home_metadata(self) -> None:
        """Reindex the home hash table from the WMT's ground truth.

        Unlike the crash-recovery resync walk this trusts the live WMT
        (nothing crashed — the table was merely re-shaped), so no
        byte-verification traffic is charged: for every remote-resident
        line whose home copy is reference-usable, re-insert its
        index-time signatures under the home LID.
        """
        encoder = self.home_encoder
        wmt = encoder.wmt
        home = self.pair.home
        for remote_lid, line in self.pair.remote:
            home_lid = wmt.home_lid_for(remote_lid)
            if home_lid is None:
                continue
            home_line = home.read_by_lineid(home_lid)
            if (
                home_line is None
                or home_line.state is None
                or not home_line.state.usable_as_reference
            ):
                continue
            for signature in encoder.extractor.index_signatures(line.data):
                encoder.hash_table.insert(signature, home_lid)

    # ------------------------------------------------------------------
    # Warm-standby replication / failover (repro.replica)
    # ------------------------------------------------------------------

    def arm_replication(self, policy=None, ship_faults=None):
        """Attach a warm standby to each endpoint's metadata journal.

        *policy* is a :class:`repro.replica.plan.ReplicationPolicy`
        (defaulted); *ship_faults* optionally maps side name to a
        stream-sabotage hook (see :class:`repro.replica.replicator.
        Replicator`). Requires the durability managers — replication
        ships the journal they maintain. Returns the replicator map.
        """
        from repro.replica.plan import ReplicationPolicy
        from repro.replica.replicator import Replicator

        if self.home_state is None or self.remote_state is None:
            raise RuntimeError(
                "replication requires durability (set config.durability)"
            )
        policy = policy or ReplicationPolicy()
        hooks = ship_faults or {}
        self.replicators = {
            "home": Replicator(self.home_state, policy, hooks.get("home")),
            "remote": Replicator(self.remote_state, policy, hooks.get("remote")),
        }
        return self.replicators

    def failover(self) -> "FailoverOutcome":
        """Kill the primary's metadata and promote the warm standby.

        Unlike :meth:`crash_endpoint`, nothing is restored from the
        primary's persistent store — the machine is gone. Both sides'
        volatile structures are wiped and replaced with the standby's
        mirror image; the existing HELLO/EPOCH handshake then
        adjudicates the image exactly as it would a crash restore: a
        *clean* standby (every shipped record applied in order, empty
        backlog) is replay-grade — the journal tee guarantees it saw
        every op the peer's frames carried — while a lossy one (lag at
        kill, un-healed gap) is not trusted and the promotion is
        reconciled against cache ground truth by the §III-F auditor.
        Each manager checkpoints on the promoted image, bumping the
        epoch — live sessions observe the bump and stale resumes are
        redirected through the resync-before-grant path. Finally the
        replicators reseed, the old primary rejoining as the new
        standby.
        """
        from repro.link.recovery import EpochResync
        from repro.state.manager import RestoreResult

        if not self.replicators:
            raise RuntimeError("failover requires arm_replication() first")
        layer = self.recovery_layer
        if layer is None:
            raise RuntimeError("failover requires the framed link")
        layer.health.bump("failovers")
        lost_total = 0
        hot = True
        for side in ("home", "remote"):
            manager = self.home_state if side == "home" else self.remote_state
            replicator = self.replicators[side]
            expected = manager.expected_progress()
            lost, clean, sections = replicator.kill_primary()
            lost_total += lost
            self._wipe_volatile(side)
            manager.suspended = True
            try:
                for name, image in sections.items():
                    manager.structures[name].restore_state(image)
            finally:
                manager.suspended = False
            standby = replicator.standby
            promoted = RestoreResult(
                base_epoch=standby.applied_progress[0],
                records_replayed=standby.stats["records_applied"],
                replay_bits=standby.stats["bits_applied"],
                complete=clean,
            )
            progress = expected if clean else standby.applied_progress
            handshake = EpochResync(layer.policy, layer.health)
            if handshake.reconnect((progress, promoted), expected) != "replay":
                hot = False
            manager.checkpoint()
        layer.health.bump("replication_lost_records", lost_total)
        if hot:
            layer.health.bump("hot_promotions")
        else:
            layer.health.bump("warm_promotions")
            # The standby image predates the lost journal tail; the
            # auditor repairs it against the surviving cache arrays and
            # re-baselines the managers.
            self.resync()
        for replicator in self.replicators.values():
            replicator.reseed()
        if METRICS.enabled:
            METRICS.counter(
                "replica.promotions_hot" if hot else "replica.promotions_warm"
            ).inc()
        return FailoverOutcome(hot=hot, lost_records=lost_total)

    @property
    def health(self) -> dict:
        """Recovery + fault-injection counters (empty without a layer)."""
        if self.recovery_layer is None:
            return {}
        counts = self.recovery_layer.health.as_dict()
        counts.update(self.recovery_layer.fault_stats())
        counts["faults_injected"] = self.recovery_layer.faults_injected
        return counts

    def _account(self, direction, event, payload, search) -> None:
        record = TransferRecord(
            direction=direction,
            line_addr=event.line_addr,
            payload=payload,
            search=search,
        )
        if self.keep_transfers:
            self.transfers.append(record)
        self.totals[f"{direction}s"] += 1
        self.totals[f"{direction}_bits"] += payload.size_bits
        self.totals["raw_bits"] += len(event.data) * 8
        if self._obs.enabled:
            self._ctr_transfers[direction].inc()
            self._ctr_payload_bits.inc(payload.size_bits)
            self._ctr_raw_bits.inc(len(event.data) * 8)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def access(self, line_addr: int, is_write: bool = False, write_data=None):
        """One remote-side access; compression rides the events."""
        return self.pair.access(line_addr, is_write=is_write, write_data=write_data)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def compressed_bits(self) -> int:
        return self.totals["fill_bits"] + self.totals["writeback_bits"]

    @property
    def compression_ratio(self) -> float:
        """Raw payload compression ratio across all transfers."""
        if self.compressed_bits == 0:
            return 1.0
        return self.totals["raw_bits"] / self.compressed_bits
