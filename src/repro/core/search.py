"""The search pipeline (§III-C, Fig 8).

Given the requested line, in order:

1. extract all non-trivial search signatures (≤16 for a 64B line);
2. probe the hash table with each, collecting candidate LineIDs
   (≤32 with the default bucket depth of two);
3. *pre-rank*: count how often each LineID was returned — duplicated
   LineIDs mean several signatures agree and are prioritized — and
   keep the top ``data_access_count`` (six by default, swept in
   Fig 22);
4. read those candidates from the home data array (no tag check) and
   build a coverage bit vector (CBV) per candidate: bit *i* set when
   candidate word *i* equals requested word *i*;
5. greedily select up to three references maximizing combined CBV
   coverage.

Candidates must pass a referencability filter supplied by the encoder
(resident, clean/shared, and translatable to a RemoteLID via the WMT);
hash collisions show up here as candidates with empty CBVs and are
naturally dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache.setassoc import LineId, SetAssociativeCache
from repro.core.config import CableConfig
from repro.core.hashtable import SignatureHashTable
from repro.core.signature import SignatureExtractor
from repro.obs.registry import METRICS
from repro.util.kernels import DATACLASS_SLOTS, line_match_mask, match_mask, popcount32


@dataclass(**DATACLASS_SLOTS)
class Reference:
    """A selected reference line."""

    home_lid: LineId
    remote_lid: LineId
    data: bytes
    cbv: int
    line_addr: int = -1


@dataclass(**DATACLASS_SLOTS)
class SearchResult:
    """Outcome of one search."""

    references: List[Reference] = field(default_factory=list)
    signatures_used: int = 0
    candidates_probed: int = 0
    data_reads: int = 0
    combined_cbv: int = 0

    @property
    def coverage(self) -> int:
        return popcount32(self.combined_cbv)

    @property
    def reference_data(self) -> List[bytes]:
        return [ref.data for ref in self.references]


def coverage_bit_vector(requested: Sequence[int], candidate: Sequence[int]) -> int:
    """CBV: bit *i* set when the i-th 32-bit words match exactly."""
    return match_mask(requested, candidate)


def greedy_select(
    cbvs: List[Tuple[int, int]], max_references: int
) -> Tuple[List[int], int]:
    """Greedy max-coverage selection over (candidate_idx, cbv) pairs.

    Repeatedly picks the candidate adding the most uncovered words.
    This reaches the same selections as the paper's swap example in
    §III-C (1100+0011 over 1100+0110) because a candidate that would
    later be swapped out never offers the best marginal gain.
    Returns (selected candidate indices, combined CBV).
    """
    selected: List[int] = []
    combined = 0
    remaining = list(cbvs)
    while remaining and len(selected) < max_references:
        best_pos = -1
        best_gain = 0
        for pos, (__, cbv) in enumerate(remaining):
            gain = popcount32(cbv & ~combined)
            if gain > best_gain:
                best_gain = gain
                best_pos = pos
        if best_pos < 0:
            break
        idx, cbv = remaining.pop(best_pos)
        selected.append(idx)
        combined |= cbv
    return selected, combined


def top_select(
    cbvs: List[Tuple[int, int]], max_references: int
) -> Tuple[List[int], int]:
    """Naive selection: the highest individual coverages, overlap
    ignored. The ablation baseline for the paper's greedy ranking —
    three near-identical references waste two pointers here."""
    ranked = sorted(cbvs, key=lambda item: -popcount32(item[1]))
    selected = [idx for idx, __ in ranked[:max_references]]
    combined = 0
    for idx, cbv in ranked[:max_references]:
        combined |= cbv
    return selected, combined


class SearchPipeline:
    """Wires extraction, the hash table and ranking together."""

    def __init__(
        self,
        config: CableConfig,
        extractor: SignatureExtractor,
        hash_table: SignatureHashTable,
        home_cache: SetAssociativeCache,
        referencable: Callable[[LineId], Optional[LineId]],
    ) -> None:
        """``referencable(home_lid)`` must return the RemoteLID when the
        home line may seed decompression (clean, shared, resident in the
        remote cache per the WMT), else None."""
        self.config = config
        self.extractor = extractor
        self.hash_table = hash_table
        self.home_cache = home_cache
        self.referencable = referencable
        # Pre-bound instruments: the hot path records with inline
        # perf_counter_ns pairs, never the context-manager tracer.
        self._obs = METRICS
        self._stage_extract = METRICS.stage("search.extract")
        self._stage_probe = METRICS.stage("search.probe")
        self._stage_prerank = METRICS.stage("search.prerank")
        self._stage_cbv = METRICS.stage("search.cbv")
        self._stage_select = METRICS.stage("search.select")
        self._ctr_searches = METRICS.counter("search.searches")
        self._ctr_signature_hits = METRICS.counter("search.signature_hits")
        self._ctr_candidates = METRICS.counter("search.candidates")
        self._ctr_data_reads = METRICS.counter("search.data_reads")
        self._ctr_references = METRICS.counter("search.references")
        self._ctr_covered_words = METRICS.counter("search.covered_words")

    def search(self, line: bytes, exclude: Optional[LineId] = None) -> SearchResult:
        """Find up to ``max_references`` references for *line*.

        ``exclude`` removes the requested line's own LineID from the
        candidate set — a line must not reference itself.
        """
        result = SearchResult()
        enabled = self._obs.enabled
        if enabled:
            t0 = perf_counter_ns()
        signatures = self.extractor.search_signatures(line)[
            : self.config.max_signatures
        ]
        result.signatures_used = len(signatures)
        if enabled:
            t1 = perf_counter_ns()
            self._stage_extract.observe(t1 - t0)
            self._ctr_searches.inc()
        if not signatures:
            return result

        # Probe + pre-rank by duplication count (step ③ of Fig 8).
        counts: Dict[LineId, int] = {}
        order: Dict[LineId, int] = {}
        for signature in signatures:
            for lid in self.hash_table.lookup(signature):
                if exclude is not None and lid == exclude:
                    continue
                counts[lid] = counts.get(lid, 0) + 1
                order.setdefault(lid, len(order))
        result.candidates_probed = len(counts)
        if enabled:
            t2 = perf_counter_ns()
            self._stage_probe.observe(t2 - t1)
        top = sorted(counts, key=lambda lid: (-counts[lid], order[lid]))
        top = top[: self.config.data_access_count]
        if enabled:
            t3 = perf_counter_ns()
            self._stage_prerank.observe(t3 - t2)
            self._ctr_signature_hits.inc(sum(counts.values()))
            self._ctr_candidates.inc(len(counts))

        # Data-array reads + CBV construction (step ④).
        candidates: List[Tuple[LineId, LineId, bytes, int, int]] = []
        for lid in top:
            cached = self.home_cache.read_by_lineid(lid)
            result.data_reads += 1
            if cached is None or not cached.usable_as_reference:
                continue
            remote_lid = self.referencable(lid)
            if remote_lid is None:
                continue
            cbv = line_match_mask(line, cached.data)
            if cbv == 0:
                continue  # hash collision / dissimilar line (Fig 7)
            candidates.append((lid, remote_lid, cached.data, cbv, cached.tag))
        if enabled:
            t4 = perf_counter_ns()
            self._stage_cbv.observe(t4 - t3)

        # CBV ranking (step ⑤) — greedy by default, naive for ablation.
        select = greedy_select if self.config.ranking_policy == "greedy" else top_select
        picks, combined = select(
            [(i, cbv) for i, (__, __, __, cbv, __) in enumerate(candidates)],
            self.config.max_references,
        )
        result.combined_cbv = combined
        if enabled:
            self._stage_select.observe(perf_counter_ns() - t4)
            self._ctr_data_reads.inc(result.data_reads)
            self._ctr_references.inc(len(picks))
            self._ctr_covered_words.inc(popcount32(combined))
        for i in picks:
            home_lid, remote_lid, data, cbv, addr = candidates[i]
            result.references.append(
                Reference(
                    home_lid=home_lid,
                    remote_lid=remote_lid,
                    data=data,
                    cbv=cbv,
                    line_addr=addr,
                )
            )
        return result
