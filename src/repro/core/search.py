"""The search pipeline (§III-C, Fig 8).

Given the requested line, in order:

1. extract all non-trivial search signatures (≤16 for a 64B line);
2. probe the hash table with each, collecting candidate LineIDs
   (≤32 with the default bucket depth of two);
3. *pre-rank*: count how often each LineID was returned — duplicated
   LineIDs mean several signatures agree and are prioritized — and
   keep the top ``data_access_count`` (six by default, swept in
   Fig 22);
4. read those candidates from the home data array (no tag check) and
   build a coverage bit vector (CBV) per candidate: bit *i* set when
   candidate word *i* equals requested word *i*;
5. greedily select up to three references maximizing combined CBV
   coverage.

Candidates must pass a referencability filter supplied by the encoder
(resident, clean/shared, and translatable to a RemoteLID via the WMT);
hash collisions show up here as candidates with empty CBVs and are
naturally dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain, islice
from time import perf_counter_ns
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache.setassoc import LineId, SetAssociativeCache
from repro.core.config import CableConfig
from repro.core.hashtable import SignatureHashTable
from repro.core.signature import SignatureExtractor
from repro.obs.registry import METRICS
from repro.util.kernels import (
    DATACLASS_SLOTS,
    batch_backend,
    get_numpy,
    line_match_mask,
    match_mask,
    match_mask_rows,
    popcount32,
    popcount_array,
)


@dataclass(**DATACLASS_SLOTS)
class Reference:
    """A selected reference line."""

    home_lid: LineId
    remote_lid: LineId
    data: bytes
    cbv: int
    line_addr: int = -1


@dataclass(**DATACLASS_SLOTS)
class SearchResult:
    """Outcome of one search."""

    references: List[Reference] = field(default_factory=list)
    signatures_used: int = 0
    candidates_probed: int = 0
    data_reads: int = 0
    combined_cbv: int = 0

    @property
    def coverage(self) -> int:
        return popcount32(self.combined_cbv)

    @property
    def reference_data(self) -> List[bytes]:
        return [ref.data for ref in self.references]


def coverage_bit_vector(requested: Sequence[int], candidate: Sequence[int]) -> int:
    """CBV: bit *i* set when the i-th 32-bit words match exactly."""
    return match_mask(requested, candidate)


def greedy_select(
    cbvs: List[Tuple[int, int]], max_references: int
) -> Tuple[List[int], int]:
    """Greedy max-coverage selection over (candidate_idx, cbv) pairs.

    Repeatedly picks the candidate adding the most uncovered words.
    This reaches the same selections as the paper's swap example in
    §III-C (1100+0011 over 1100+0110) because a candidate that would
    later be swapped out never offers the best marginal gain.
    Returns (selected candidate indices, combined CBV).
    """
    selected: List[int] = []
    combined = 0
    remaining = list(cbvs)
    while remaining and len(selected) < max_references:
        best_pos = -1
        best_gain = 0
        for pos, (__, cbv) in enumerate(remaining):
            gain = popcount32(cbv & ~combined)
            if gain > best_gain:
                best_gain = gain
                best_pos = pos
        if best_pos < 0:
            break
        idx, cbv = remaining.pop(best_pos)
        selected.append(idx)
        combined |= cbv
    return selected, combined


def top_select(
    cbvs: List[Tuple[int, int]], max_references: int
) -> Tuple[List[int], int]:
    """Naive selection: the highest individual coverages, overlap
    ignored. The ablation baseline for the paper's greedy ranking —
    three near-identical references waste two pointers here."""
    ranked = sorted(cbvs, key=lambda item: -popcount32(item[1]))
    selected = [idx for idx, __ in ranked[:max_references]]
    combined = 0
    for idx, cbv in ranked[:max_references]:
        combined |= cbv
    return selected, combined


class SearchPipeline:
    """Wires extraction, the hash table and ranking together."""

    def __init__(
        self,
        config: CableConfig,
        extractor: SignatureExtractor,
        hash_table: SignatureHashTable,
        home_cache: SetAssociativeCache,
        referencable: Callable[[LineId], Optional[LineId]],
        referencable_replay: Optional[Callable[[bool, int], None]] = None,
        referencable_generation: Optional[Callable[[], int]] = None,
    ) -> None:
        """``referencable(home_lid)`` must return the RemoteLID when the
        home line may seed decompression (clean, shared, resident in the
        remote cache per the WMT), else None.

        ``referencable_replay(hit, count=1)``, when given, re-counts
        *count* translations whose outcome is already known; the batched
        search uses it to resolve each distinct candidate once per block
        while keeping the translation stats identical to per-candidate
        ``referencable`` calls. Without it the batch legs simply call
        ``referencable`` once per occurrence, exactly like the scalar
        path.

        ``referencable_generation()``, when given, must return a value
        that changes whenever ``referencable``'s outcomes could change
        (the encoder passes the WMT generation). It unlocks the
        *cross-block* result cache: together with the hash-table and
        cache generations it proves that a previously computed
        per-line result is still byte-identical, so repeated lines skip
        the whole pipeline and only replay their stats."""
        self.config = config
        self.extractor = extractor
        self.hash_table = hash_table
        self.home_cache = home_cache
        self.referencable = referencable
        self.referencable_replay = referencable_replay
        self.referencable_generation = referencable_generation
        # Cross-block result cache: (line, exclude) → cached outcome,
        # valid only while the generation triple is unchanged.
        self._line_cache: Dict[Tuple[bytes, Optional[LineId]], tuple] = {}
        self._line_cache_gen: Optional[tuple] = None
        # Pre-bound instruments: the hot path records with inline
        # perf_counter_ns pairs, never the context-manager tracer.
        self._obs = METRICS
        self._stage_extract = METRICS.stage("search.extract")
        self._stage_probe = METRICS.stage("search.probe")
        self._stage_prerank = METRICS.stage("search.prerank")
        self._stage_cbv = METRICS.stage("search.cbv")
        self._stage_select = METRICS.stage("search.select")
        self._stage_batch_extract = METRICS.stage("search.batch.extract")
        self._stage_batch_probe = METRICS.stage("search.batch.probe")
        self._stage_batch_rank = METRICS.stage("search.batch.rank")
        self._stage_batch_resolve = METRICS.stage("search.batch.resolve")
        self._stage_batch_select = METRICS.stage("search.batch.select")
        self._ctr_searches = METRICS.counter("search.searches")
        self._ctr_signature_hits = METRICS.counter("search.signature_hits")
        self._ctr_candidates = METRICS.counter("search.candidates")
        self._ctr_data_reads = METRICS.counter("search.data_reads")
        self._ctr_references = METRICS.counter("search.references")
        self._ctr_covered_words = METRICS.counter("search.covered_words")

    def invalidate_result_cache(self) -> None:
        """Drop the cross-block result cache unconditionally.

        The generation triple only tracks *state* (hash table, cache,
        WMT) — it cannot see a config change, so online knob tuning
        must call this whenever the pipeline's config is rebound.
        """
        self._line_cache.clear()
        self._line_cache_gen = None

    def search(self, line: bytes, exclude: Optional[LineId] = None) -> SearchResult:
        """Find up to ``max_references`` references for *line*.

        ``exclude`` removes the requested line's own LineID from the
        candidate set — a line must not reference itself.
        """
        result = SearchResult()
        enabled = self._obs.enabled
        if enabled:
            t0 = perf_counter_ns()
        signatures = self.extractor.search_signatures(line)[
            : self.config.max_signatures
        ]
        result.signatures_used = len(signatures)
        if enabled:
            t1 = perf_counter_ns()
            self._stage_extract.observe(t1 - t0)
            self._ctr_searches.inc()
        if not signatures:
            return result

        # Probe + pre-rank by duplication count (step ③ of Fig 8).
        counts: Dict[LineId, int] = {}
        order: Dict[LineId, int] = {}
        for signature in signatures:
            for lid in self.hash_table.lookup(signature):
                if exclude is not None and lid == exclude:
                    continue
                counts[lid] = counts.get(lid, 0) + 1
                order.setdefault(lid, len(order))
        result.candidates_probed = len(counts)
        if enabled:
            t2 = perf_counter_ns()
            self._stage_probe.observe(t2 - t1)
        top = sorted(counts, key=lambda lid: (-counts[lid], order[lid]))
        top = top[: self.config.data_access_count]
        if enabled:
            t3 = perf_counter_ns()
            self._stage_prerank.observe(t3 - t2)
            self._ctr_signature_hits.inc(sum(counts.values()))
            self._ctr_candidates.inc(len(counts))

        # Data-array reads + CBV construction (step ④).
        candidates: List[Tuple[LineId, LineId, bytes, int, int]] = []
        for lid in top:
            cached = self.home_cache.read_by_lineid(lid)
            result.data_reads += 1
            if cached is None or not cached.usable_as_reference:
                continue
            remote_lid = self.referencable(lid)
            if remote_lid is None:
                continue
            cbv = line_match_mask(line, cached.data)
            if cbv == 0:
                continue  # hash collision / dissimilar line (Fig 7)
            candidates.append((lid, remote_lid, cached.data, cbv, cached.tag))
        if enabled:
            t4 = perf_counter_ns()
            self._stage_cbv.observe(t4 - t3)

        # CBV ranking (step ⑤) — greedy by default, naive for ablation.
        select = greedy_select if self.config.ranking_policy == "greedy" else top_select
        picks, combined = select(
            [(i, cbv) for i, (__, __, __, cbv, __) in enumerate(candidates)],
            self.config.max_references,
        )
        result.combined_cbv = combined
        if enabled:
            self._stage_select.observe(perf_counter_ns() - t4)
            self._ctr_data_reads.inc(result.data_reads)
            self._ctr_references.inc(len(picks))
            self._ctr_covered_words.inc(popcount32(combined))
        for i in picks:
            home_lid, remote_lid, data, cbv, addr = candidates[i]
            result.references.append(
                Reference(
                    home_lid=home_lid,
                    remote_lid=remote_lid,
                    data=data,
                    cbv=cbv,
                    line_addr=addr,
                )
            )
        return result

    # ------------------------------------------------------------------
    # Batched search (whole blocks of lines at once)
    # ------------------------------------------------------------------
    #
    # Both legs are byte-identical to `[self.search(l, e) for l, e in
    # zip(lines, excludes)]` — including the stats side effects on the
    # hash table, the cache's data-read counter and the referencability
    # callback — because encoder state is frozen while a block encodes
    # (search never mutates the hash table, WMT or cache). That freeze
    # is what makes the per-block memoization below sound: a candidate
    # LineID resolves the same way for every line in the block, so it
    # is resolved once and its stats bumps are replayed for repeats.
    #
    # The same argument extends *across* blocks through generation
    # counters: the hash table, the home cache and (via
    # ``referencable_generation``) the WMT each bump a counter on every
    # mutation, so an unchanged generation triple proves a previously
    # computed per-line result is still exact. Cached lines replay
    # their stats in bulk and skip the pipeline entirely — the
    # cache-friendly hot loop that pushes recurrent streams past the
    # 10× throughput target.

    #: Cross-block cache bound; above it the oldest half is dropped.
    _LINE_CACHE_LIMIT = 32768

    def search_batch(
        self,
        lines: Sequence[bytes],
        excludes: Optional[Sequence[Optional[LineId]]] = None,
        backend: Optional[str] = None,
    ) -> List[SearchResult]:
        """Search a whole block of lines at once.

        *excludes* pairs with *lines* (the per-line own-LineID
        exclusion); *backend* pins a kernel leg ("numpy"/"pure") for
        tests, defaulting to the import-time selection.
        """
        if not lines:
            return []
        count = len(lines)
        if excludes is None:
            excludes = [None] * count
        leg = batch_backend(backend)
        if leg == "numpy" and not self._vectorizable(lines):
            leg = "pure"
        run = self._search_batch_numpy if leg == "numpy" else self._search_batch_pure

        gen_fn = self.referencable_generation
        if gen_fn is None:
            # No generation witness for the referencability callback —
            # per-block memoization only.
            return run(lines, excludes)[0]
        cache = self._line_cache
        gen = (self.hash_table.generation, self.home_cache.generation, gen_fn())
        if gen != self._line_cache_gen:
            cache.clear()
            self._line_cache_gen = gen

        results: List[Optional[SearchResult]] = [None] * count
        miss_idx: List[int] = []
        cache_get = cache.get
        replay = self.referencable_replay
        referencable = self.referencable
        enabled = self._obs.enabled
        acc_lookups = acc_bucket_hits = acc_reads_counted = 0
        acc_wmt_hits = acc_wmt_misses = 0
        hit_lines = hit_occ = hit_cands = hit_reads = hit_refs = hit_cov = 0
        for i in range(count):
            entry = cache_get((lines[i], excludes[i]))
            if entry is None:
                miss_idx.append(i)
                continue
            (
                sigs_used,
                probe_hits,
                occ,
                probed,
                reads,
                n_counted,
                n_h,
                n_m,
                consult_lids,
                refs,
                combined,
            ) = entry
            acc_lookups += sigs_used
            acc_bucket_hits += probe_hits
            acc_reads_counted += n_counted
            if replay is not None:
                acc_wmt_hits += n_h
                acc_wmt_misses += n_m
            else:
                # No replay hook: re-consult per occurrence, exactly
                # like the scalar path would.
                for lid in consult_lids:
                    referencable(LineId(lid))
            results[i] = SearchResult(
                references=list(refs),
                signatures_used=sigs_used,
                candidates_probed=probed,
                data_reads=reads,
                combined_cbv=combined,
            )
            if enabled:
                hit_lines += 1
                hit_occ += occ
                hit_cands += probed
                hit_reads += reads
                hit_refs += len(refs)
                hit_cov += popcount32(combined)
        if acc_lookups or acc_bucket_hits:
            self.hash_table.count_probes(acc_lookups, acc_bucket_hits)
        if acc_reads_counted:
            self.home_cache.stats["data_reads"] += acc_reads_counted
        if acc_wmt_hits:
            replay(True, acc_wmt_hits)
        if acc_wmt_misses:
            replay(False, acc_wmt_misses)
        if enabled and hit_lines:
            self._ctr_searches.inc(hit_lines)
            self._ctr_signature_hits.inc(hit_occ)
            self._ctr_candidates.inc(hit_cands)
            self._ctr_data_reads.inc(hit_reads)
            self._ctr_references.inc(hit_refs)
            self._ctr_covered_words.inc(hit_cov)
        if miss_idx:
            if len(miss_idx) == count:
                sub_lines: Sequence[bytes] = lines
                sub_excludes: Sequence[Optional[LineId]] = excludes
            else:
                sub_lines = [lines[i] for i in miss_idx]
                sub_excludes = [excludes[i] for i in miss_idx]
            sub_results, captures = run(sub_lines, sub_excludes)
            for j, i in enumerate(miss_idx):
                result = sub_results[j]
                results[i] = result
                probe_hits, occ, n_counted, n_h, n_m, consult_lids = captures[j]
                cache[(lines[i], excludes[i])] = (
                    result.signatures_used,
                    probe_hits,
                    occ,
                    result.candidates_probed,
                    result.data_reads,
                    n_counted,
                    n_h,
                    n_m,
                    consult_lids,
                    tuple(result.references),
                    result.combined_cbv,
                )
            if len(cache) > self._LINE_CACHE_LIMIT:
                for key in list(islice(iter(cache), self._LINE_CACHE_LIMIT // 2)):
                    del cache[key]
        return results

    def _vectorizable(self, lines: Sequence[bytes]) -> bool:
        """The numpy leg wants homogeneous lines that match the cache
        geometry (CBV rows align) and CBVs that fit uint32."""
        size = len(lines[0])
        return (
            size // 4 <= 32
            and size == self.home_cache.geometry.line_bytes
            and all(len(line) == size for line in lines)
        )

    def _search_batch_numpy(
        self, lines: Sequence[bytes], excludes: Sequence[Optional[LineId]]
    ) -> Tuple[List[SearchResult], List[tuple]]:
        np = get_numpy()
        config = self.config
        enabled = self._obs.enabled
        if enabled:
            t0 = perf_counter_ns()
        count = len(lines)
        max_signatures = config.max_signatures
        sig_lists = [
            sigs[:max_signatures]
            for sigs in self.extractor.search_signatures_batch(lines, backend="numpy")
        ]
        results = [SearchResult() for _ in range(count)]
        for result, sigs in zip(results, sig_lists):
            result.signatures_used = len(sigs)
        # Per-line capture for the cross-block cache: (probe hits,
        # candidate occurrences, counted reads, WMT hits, WMT misses,
        # consulted LineIDs).
        probe_hits_l = [0] * count
        occ_l = [0] * count
        counted_l = [0] * count
        wmth_l = [0] * count
        wmtm_l = [0] * count
        consults_l: List[tuple] = [()] * count
        if enabled:
            t1 = perf_counter_ns()
            self._stage_batch_extract.observe(t1 - t0)
            self._ctr_searches.inc(count)
        lens = [len(sigs) for sigs in sig_lists]
        total = sum(lens)
        if total == 0:
            return results, list(
                zip(probe_hits_l, occ_l, counted_l, wmth_l, wmtm_l, consults_l)
            )

        # Probe: every distinct signature hits its bucket exactly once;
        # the per-probe lookup/hit accounting is replayed in bulk.
        flat = np.fromiter(chain.from_iterable(sig_lists), dtype=np.int64, count=total)
        line_of = np.repeat(np.arange(count), lens)
        uniq_sigs, inv = np.unique(flat, return_inverse=True)
        buckets = self.hash_table.lookup_block(uniq_sigs.tolist())
        bucket_lens = np.array([len(bucket) for bucket in buckets], dtype=np.int64)
        hit_probes = bucket_lens[inv] > 0
        probe_hits_l = np.bincount(line_of[hit_probes], minlength=count).tolist()
        self.hash_table.count_probes(total, int(hit_probes.sum()))
        if enabled:
            t2 = perf_counter_ns()
            self._stage_batch_probe.observe(t2 - t1)
        width = int(bucket_lens.max())
        if width == 0:
            return results, list(
                zip(probe_hits_l, occ_l, counted_l, wmth_l, wmtm_l, consults_l)
            )

        # Pre-rank: gather all candidate (line, lid) pairs, count
        # duplications and keep first-seen order — np.unique's
        # return_index over the flattened probe stream reproduces the
        # scalar order dict exactly (both walk sig-major bucket order).
        pad = (-1,) * width
        matrix = np.array(
            [(bucket + pad)[:width] for bucket in buckets], dtype=np.int64
        )
        flat_cand = matrix[inv].ravel()
        flat_line = np.repeat(line_of, width)
        excl = np.fromiter(
            (-1 if e is None else int(e) for e in excludes), dtype=np.int64, count=count
        )
        valid = (flat_cand >= 0) & (flat_cand != excl[flat_line])
        cand = flat_cand[valid]
        if not len(cand):
            if enabled:
                self._stage_batch_rank.observe(perf_counter_ns() - t2)
            return results, list(
                zip(probe_hits_l, occ_l, counted_l, wmth_l, wmtm_l, consults_l)
            )
        cand_line = flat_line[valid]
        occ_l = np.bincount(cand_line, minlength=count).tolist()
        lid_space = int(cand.max()) + 1
        keys = cand_line * lid_space + cand
        uniq_keys, first_seen, dup_counts = np.unique(
            keys, return_index=True, return_counts=True
        )
        key_lines = uniq_keys // lid_space
        rank = np.lexsort((first_seen, -dup_counts, key_lines))
        lids_ranked = (uniq_keys % lid_space)[rank].tolist()
        bounds = np.searchsorted(key_lines[rank], np.arange(count + 1)).tolist()
        probed = np.bincount(key_lines, minlength=count).tolist()
        for i in range(count):
            results[i].candidates_probed = probed[i]
        if enabled:
            t3 = perf_counter_ns()
            self._stage_batch_rank.observe(t3 - t2)
            self._ctr_signature_hits.inc(len(cand))
            self._ctr_candidates.inc(len(uniq_keys))

        # Resolve: read/translate each distinct candidate once, replay
        # the stats for repeats, then build every CBV in one batched
        # compare (the fully-vectorized CBV kernel).
        data_access_count = config.data_access_count
        read_by_lineid = self.home_cache.read_by_lineid
        cache_stats = self.home_cache.stats
        referencable = self.referencable
        replay = self.referencable_replay
        need_consults = replay is None
        resolve: Dict[int, tuple] = {}
        pair_lines: List[int] = []
        pair_data: List[bytes] = []
        staged: List[List[tuple]] = [[] for _ in range(count)]
        total_reads = 0
        repeat_reads = 0
        repeat_hits = 0
        repeat_misses = 0
        for i in range(count):
            lo = bounds[i]
            top = lids_ranked[lo : min(bounds[i + 1], lo + data_access_count)]
            stage = staged[i]
            n_counted = n_h = n_m = 0
            consults: List[int] = []
            for lid in top:
                record = resolve.get(lid)
                if record is None:
                    home_lid = LineId(lid)
                    before = cache_stats["data_reads"]
                    cached = read_by_lineid(home_lid)
                    counted = cache_stats["data_reads"] != before
                    if cached is None or not cached.usable_as_reference:
                        record = (counted, False, False, None)
                    else:
                        remote_lid = referencable(home_lid)
                        if remote_lid is None:
                            record = (counted, True, False, None)
                        else:
                            record = (
                                counted,
                                True,
                                True,
                                (home_lid, remote_lid, cached.data, cached.tag),
                            )
                    resolve[lid] = record
                    counted, consulted, hit, payload = record
                else:
                    counted, consulted, hit, payload = record
                    if counted:
                        repeat_reads += 1
                    if consulted:
                        if replay is not None:
                            if hit:
                                repeat_hits += 1
                            else:
                                repeat_misses += 1
                        else:
                            referencable(LineId(lid))
                if counted:
                    n_counted += 1
                if consulted:
                    if hit:
                        n_h += 1
                    else:
                        n_m += 1
                    if need_consults:
                        consults.append(lid)
                if payload is not None:
                    stage.append((payload, len(pair_lines)))
                    pair_lines.append(i)
                    pair_data.append(payload[2])
            reads = len(top)
            results[i].data_reads = reads
            total_reads += reads
            counted_l[i] = n_counted
            wmth_l[i] = n_h
            wmtm_l[i] = n_m
            if consults:
                consults_l[i] = tuple(consults)
        if repeat_reads:
            cache_stats["data_reads"] += repeat_reads
        if repeat_hits:
            replay(True, repeat_hits)
        if repeat_misses:
            replay(False, repeat_misses)
        if enabled:
            t4 = perf_counter_ns()
            self._stage_batch_resolve.observe(t4 - t3)

        cbvs: List[int] = []
        if pair_lines:
            words_matrix = np.frombuffer(b"".join(lines), dtype="<u4").reshape(
                count, -1
            )
            cand_matrix = np.frombuffer(b"".join(pair_data), dtype="<u4").reshape(
                len(pair_data), -1
            )
            cbvs = match_mask_rows(words_matrix[pair_lines], cand_matrix)

        # Select (step ⑤), vectorized greedy across all lines at once.
        per_line: List[List[tuple]] = [[] for _ in range(count)]
        for i in range(count):
            keep = per_line[i]
            for payload, pair_index in staged[i]:
                cbv = cbvs[pair_index]
                if cbv:
                    keep.append((payload[0], payload[1], payload[2], cbv, payload[3]))
        total_references = 0
        total_covered = 0
        if config.ranking_policy == "greedy":
            active = [i for i in range(count) if per_line[i]]
            if active:
                picks_rows, combined_rows = _greedy_select_rows(
                    np,
                    [[c[3] for c in per_line[i]] for i in active],
                    config.max_references,
                )
                for j, i in enumerate(active):
                    combined = combined_rows[j]
                    results[i].combined_cbv = combined
                    total_covered += popcount32(combined)
                    refs = results[i].references
                    row = per_line[i]
                    for col in picks_rows[j]:
                        home_lid, remote_lid, data, cbv, addr = row[col]
                        refs.append(
                            Reference(
                                home_lid=home_lid,
                                remote_lid=remote_lid,
                                data=data,
                                cbv=cbv,
                                line_addr=addr,
                            )
                        )
                    total_references += len(picks_rows[j])
        else:
            for i in range(count):
                row = per_line[i]
                picks, combined = top_select(
                    [(k, c[3]) for k, c in enumerate(row)], config.max_references
                )
                results[i].combined_cbv = combined
                total_covered += popcount32(combined)
                for k in picks:
                    home_lid, remote_lid, data, cbv, addr = row[k]
                    results[i].references.append(
                        Reference(
                            home_lid=home_lid,
                            remote_lid=remote_lid,
                            data=data,
                            cbv=cbv,
                            line_addr=addr,
                        )
                    )
                total_references += len(picks)
        if enabled:
            self._stage_batch_select.observe(perf_counter_ns() - t4)
            self._ctr_data_reads.inc(total_reads)
            self._ctr_references.inc(total_references)
            self._ctr_covered_words.inc(total_covered)
        return results, list(
            zip(probe_hits_l, occ_l, counted_l, wmth_l, wmtm_l, consults_l)
        )

    def _search_batch_pure(
        self, lines: Sequence[bytes], excludes: Sequence[Optional[LineId]]
    ) -> Tuple[List[SearchResult], List[tuple]]:
        """Pure-python block leg: the scalar control flow, sharing one
        bucket cache and one candidate-resolution memo per block."""
        config = self.config
        hash_table = self.hash_table
        read_by_lineid = self.home_cache.read_by_lineid
        cache_stats = self.home_cache.stats
        referencable = self.referencable
        replay = self.referencable_replay
        need_consults = replay is None
        enabled = self._obs.enabled
        select = greedy_select if config.ranking_policy == "greedy" else top_select
        self.extractor.search_signatures_batch(lines, backend="pure")
        bucket_cache: Dict[int, Tuple[LineId, ...]] = {}
        resolve: Dict[LineId, tuple] = {}
        results: List[SearchResult] = []
        captures: List[tuple] = []
        for line, exclude in zip(lines, excludes):
            result = SearchResult()
            signatures = self.extractor.search_signatures(line)[
                : config.max_signatures
            ]
            result.signatures_used = len(signatures)
            if enabled:
                self._ctr_searches.inc()
            if not signatures:
                results.append(result)
                captures.append((0, 0, 0, 0, 0, ()))
                continue
            counts: Dict[LineId, int] = {}
            order: Dict[LineId, int] = {}
            hits = 0
            for signature in signatures:
                bucket = bucket_cache.get(signature)
                if bucket is None:
                    bucket = hash_table.lookup_block((signature,))[0]
                    bucket_cache[signature] = bucket
                if bucket:
                    hits += 1
                for lid in bucket:
                    if exclude is not None and lid == exclude:
                        continue
                    counts[lid] = counts.get(lid, 0) + 1
                    order.setdefault(lid, len(order))
            hash_table.count_probes(len(signatures), hits)
            result.candidates_probed = len(counts)
            top = sorted(counts, key=lambda lid: (-counts[lid], order[lid]))
            top = top[: config.data_access_count]
            if enabled:
                self._ctr_signature_hits.inc(sum(counts.values()))
                self._ctr_candidates.inc(len(counts))
            candidates: List[Tuple[LineId, LineId, bytes, int, int]] = []
            n_counted = n_h = n_m = 0
            consults: List[int] = []
            for lid in top:
                record = resolve.get(lid)
                if record is None:
                    before = cache_stats["data_reads"]
                    cached = read_by_lineid(lid)
                    counted = cache_stats["data_reads"] != before
                    if cached is None or not cached.usable_as_reference:
                        record = (counted, False, False, None)
                    else:
                        remote_lid = referencable(lid)
                        if remote_lid is None:
                            record = (counted, True, False, None)
                        else:
                            record = (
                                counted,
                                True,
                                True,
                                (lid, remote_lid, cached.data, cached.tag),
                            )
                    resolve[lid] = record
                    counted, consulted, hit, payload = record
                else:
                    counted, consulted, hit, payload = record
                    if counted:
                        cache_stats["data_reads"] += 1
                    if consulted:
                        if replay is not None:
                            replay(hit)
                        else:
                            referencable(lid)
                if counted:
                    n_counted += 1
                if consulted:
                    if hit:
                        n_h += 1
                    else:
                        n_m += 1
                    if need_consults:
                        consults.append(int(lid))
                result.data_reads += 1
                if payload is None:
                    continue
                cbv = line_match_mask(line, payload[2])
                if cbv == 0:
                    continue
                candidates.append((payload[0], payload[1], payload[2], cbv, payload[3]))
            picks, combined = select(
                [(i, cbv) for i, (__, __, __, cbv, __) in enumerate(candidates)],
                config.max_references,
            )
            result.combined_cbv = combined
            if enabled:
                self._ctr_data_reads.inc(result.data_reads)
                self._ctr_references.inc(len(picks))
                self._ctr_covered_words.inc(popcount32(combined))
            for i in picks:
                home_lid, remote_lid, data, cbv, addr = candidates[i]
                result.references.append(
                    Reference(
                        home_lid=home_lid,
                        remote_lid=remote_lid,
                        data=data,
                        cbv=cbv,
                        line_addr=addr,
                    )
                )
            results.append(result)
            captures.append(
                (
                    hits,
                    sum(counts.values()),
                    n_counted,
                    n_h,
                    n_m,
                    tuple(consults) if consults else (),
                )
            )
        return results, captures


def _greedy_select_rows(np, cbv_rows: List[List[int]], max_references: int):
    """Vectorized greedy max-coverage over many candidate rows at once.

    Exactly :func:`greedy_select` per row: ``argmax`` picks the first
    index achieving the best marginal gain (the scalar loop only
    replaces on strictly-greater), chosen candidates are zeroed (their
    gain drops to 0 and zero-gain candidates are never selected), and a
    row stops as soon as nothing adds coverage.
    """
    count = len(cbv_rows)
    width = max(len(row) for row in cbv_rows)
    matrix = np.zeros((count, width), dtype=np.uint32)
    for i, row in enumerate(cbv_rows):
        matrix[i, : len(row)] = row
    combined = np.zeros(count, dtype=np.uint32)
    picks: List[List[int]] = [[] for _ in range(count)]
    row_index = np.arange(count)
    for _ in range(max_references):
        gains = popcount_array(matrix & ~combined[:, None])
        best = gains.argmax(axis=1)
        active = np.flatnonzero(gains[row_index, best] > 0)
        if not len(active):
            break
        chosen = best[active]
        combined[active] |= matrix[active, chosen]
        matrix[active, chosen] = 0
        for r, c in zip(active.tolist(), chosen.tolist()):
            picks[r].append(c)
    return picks, combined.tolist()
