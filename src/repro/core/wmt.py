"""The Way-Map Table (§III-D, Fig 9).

The WMT lives at the *home* cache and shadows the remote cache's
layout: one entry per remote (set, way). Each entry holds a
*normalized HomeLID* — (alias, home way), where the alias is the home
set index with the remote index bits stripped — plus a valid bit.

Two translations come out of this single structure:

- **HomeLID → RemoteLID** (compression path): derive the remote index
  from the home index's low bits, normalize the HomeLID, and search
  the WMT row; a hit's position *is* the remote way (Fig 9). A miss
  means the line is not guaranteed resident remotely and cannot be a
  reference.
- **RemoteLID → HomeLID** (write-back path, §III-G): the remote cache
  has no WMT and just sends its own LineID; the home cache reads
  WMT[index][way] and denormalizes.

Because it is installed/invalidated from the way-replacement info in
every request, the WMT tracks remote contents precisely, which is what
decouples CABLE from the replacement policy (§II-C).
"""

from __future__ import annotations

import struct
from typing import Callable, List, NamedTuple, Optional

from repro.cache.setassoc import CacheGeometry, LineId
from repro.core.errors import SnapshotCorruptionError


class NormalizedHomeLid(NamedTuple):
    """(alias, home way): a HomeLID with the remote index bits removed.

    A NamedTuple rather than a dataclass: WMT rows are compared against
    a wanted entry on every reference-translation probe, and tuple
    equality runs in C.
    """

    alias: int
    home_way: int


class WayMapTable:
    """Home-side shadow of the remote cache's (set, way) layout."""

    def __init__(self, home: CacheGeometry, remote: CacheGeometry) -> None:
        if home.sets < remote.sets:
            raise ValueError("home cache must have at least as many sets as remote")
        if home.sets % remote.sets:
            raise ValueError("home/remote set counts must nest (powers of two)")
        self.home = home
        self.remote = remote
        self.alias_bits = home.index_bits - remote.index_bits
        self._remote_index_mask = remote.sets - 1
        # Width constants consulted on every translation (hot path).
        self._home_way_bits = home.way_bits
        self._home_way_mask = (1 << home.way_bits) - 1
        self._remote_way_bits = remote.way_bits
        self._remote_index_bits = remote.index_bits
        self._entries: List[List[Optional[NormalizedHomeLid]]] = [
            [None] * remote.ways for _ in range(remote.sets)
        ]
        #: Bumped on every entry mutation. The batched search keys its
        #: cross-block result cache on this: an unchanged generation
        #: proves every translation outcome is unchanged.
        self.generation = 0
        self.stats = {"installs": 0, "invalidations": 0, "hits": 0, "misses": 0}
        #: Durability hook (:class:`repro.state.manager.EndpointStateManager`):
        #: when set, every effective mutation is reported as
        #: ``journal(op, *args)``. One attribute check on the hot path.
        self.journal: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Geometry / overhead
    # ------------------------------------------------------------------

    @property
    def entry_bits(self) -> int:
        """Bits per WMT entry: alias + home way + valid."""
        return self.alias_bits + self.home.way_bits + 1

    @property
    def storage_bits(self) -> int:
        return self.entry_bits * self.remote.sets * self.remote.ways

    def overhead_vs_home_data(self) -> float:
        """WMT storage as a fraction of home-cache data (Table III)."""
        return self.storage_bits / (self.home.size_bytes * 8)

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------

    def normalize(self, home_lid: LineId) -> NormalizedHomeLid:
        home_index, home_way = home_lid.unpack(self._home_way_bits)
        return NormalizedHomeLid(home_index >> self._remote_index_bits, home_way)

    def denormalize(self, entry: NormalizedHomeLid, remote_index: int) -> LineId:
        home_index = (entry.alias << self._remote_index_bits) | remote_index
        return LineId.pack(home_index, entry.home_way, self._home_way_bits)

    def remote_index_of(self, home_lid: LineId) -> int:
        home_index, __ = home_lid.unpack(self._home_way_bits)
        return home_index & self._remote_index_mask

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def remote_lid_for(self, home_lid: LineId) -> Optional[LineId]:
        """HomeLID → RemoteLID, or None when not resident remotely."""
        home_index = home_lid >> self._home_way_bits
        remote_index = home_index & self._remote_index_mask
        wanted = (
            home_index >> self._remote_index_bits,
            home_lid & self._home_way_mask,
        )
        for way, entry in enumerate(self._entries[remote_index]):
            if entry == wanted:
                self.stats["hits"] += 1
                return LineId.pack(remote_index, way, self._remote_way_bits)
        self.stats["misses"] += 1
        return None

    def replay_translation(self, hit: bool, count: int = 1) -> None:
        """Re-count *count* translations whose outcome is already known.

        The batched search resolves each distinct HomeLID once per
        block (encoder state is frozen during a block, so the outcome
        cannot change) and replays the hit/miss accounting for the
        repeats — and, through its generation-guarded result cache, in
        bulk for whole cached lines — keeping the stats identical to
        per-candidate :meth:`remote_lid_for` calls.
        """
        self.stats["hits" if hit else "misses"] += count

    def home_lid_for(self, remote_lid: LineId) -> Optional[LineId]:
        """RemoteLID → HomeLID (write-back translation, §III-G)."""
        remote_index, remote_way = remote_lid.unpack(self.remote.way_bits)
        entry = self._entries[remote_index][remote_way]
        if entry is None:
            return None
        return self.denormalize(entry, remote_index)

    # ------------------------------------------------------------------
    # Maintenance (driven by sync events)
    # ------------------------------------------------------------------

    def install(self, home_lid: LineId, remote_lid: LineId) -> Optional[LineId]:
        """Record that the home line now resides at *remote_lid*.

        Returns the HomeLID previously tracked in that remote slot (the
        displaced line), which sync uses to invalidate its signatures.
        """
        remote_index, remote_way = remote_lid.unpack(self.remote.way_bits)
        if (remote_index & self._remote_index_mask) != self.remote_index_of(home_lid):
            raise ValueError("home line cannot map to that remote set")
        previous = self._entries[remote_index][remote_way]
        displaced = self.denormalize(previous, remote_index) if previous else None
        self._entries[remote_index][remote_way] = self.normalize(home_lid)
        self.generation += 1
        self.stats["installs"] += 1
        if self.journal is not None:
            self.journal("wmt_install", int(home_lid), int(remote_lid))
        return displaced

    def invalidate_remote(self, remote_lid: LineId) -> Optional[LineId]:
        """Clear a remote slot, returning the HomeLID it tracked."""
        remote_index, remote_way = remote_lid.unpack(self.remote.way_bits)
        previous = self._entries[remote_index][remote_way]
        self._entries[remote_index][remote_way] = None
        self.generation += 1
        if previous is None:
            return None
        self.stats["invalidations"] += 1
        if self.journal is not None:
            self.journal("wmt_inval_remote", int(remote_lid))
        return self.denormalize(previous, remote_index)

    def invalidate_home(self, home_lid: LineId) -> Optional[LineId]:
        """Clear the slot tracking *home_lid* (home-side eviction)."""
        remote_index = self.remote_index_of(home_lid)
        wanted = self.normalize(home_lid)
        for way, entry in enumerate(self._entries[remote_index]):
            if entry == wanted:
                self._entries[remote_index][way] = None
                self.generation += 1
                self.stats["invalidations"] += 1
                if self.journal is not None:
                    self.journal("wmt_inval_home", int(home_lid))
                return LineId.pack(remote_index, way, self.remote.way_bits)
        return None

    def occupancy(self) -> int:
        return sum(
            1 for row in self._entries for entry in row if entry is not None
        )

    # ------------------------------------------------------------------
    # Durability (snapshot / restore, repro.state)
    # ------------------------------------------------------------------

    _SNAP_HEADER = struct.Struct("<HH")
    _SNAP_ENTRY = struct.Struct("<iH")  # alias (-1 = invalid), home way

    def snapshot_state(self) -> bytes:
        """Serialize the full table for a durability snapshot."""
        parts = [self._SNAP_HEADER.pack(self.remote.sets, self.remote.ways)]
        pack = self._SNAP_ENTRY.pack
        for row in self._entries:
            for entry in row:
                if entry is None:
                    parts.append(pack(-1, 0))
                else:
                    parts.append(pack(entry.alias, entry.home_way))
        return b"".join(parts)

    def restore_state(self, data: bytes) -> None:
        """Rebuild the table from :meth:`snapshot_state` output."""
        header = self._SNAP_HEADER
        entry_struct = self._SNAP_ENTRY
        expected = header.size + entry_struct.size * self.remote.sets * self.remote.ways
        if len(data) != expected:
            raise SnapshotCorruptionError(
                f"WMT snapshot is {len(data)} bytes, expected {expected}"
            )
        sets, ways = header.unpack_from(data, 0)
        if sets != self.remote.sets or ways != self.remote.ways:
            raise SnapshotCorruptionError(
                f"WMT snapshot geometry {sets}x{ways} does not match "
                f"{self.remote.sets}x{self.remote.ways}"
            )
        offset = header.size
        entries: List[List[Optional[NormalizedHomeLid]]] = []
        for _ in range(sets):
            row: List[Optional[NormalizedHomeLid]] = []
            for _ in range(ways):
                alias, home_way = entry_struct.unpack_from(data, offset)
                offset += entry_struct.size
                row.append(
                    None if alias < 0 else NormalizedHomeLid(alias, home_way)
                )
            entries.append(row)
        self._entries = entries
        self.generation += 1

    def reset_state(self) -> None:
        """Wipe to cold state (endpoint crash, before restore)."""
        self._entries = [
            [None] * self.remote.ways for _ in range(self.remote.sets)
        ]
        self.generation += 1
