"""The Way-Map Table (§III-D, Fig 9).

The WMT lives at the *home* cache and shadows the remote cache's
layout: one entry per remote (set, way). Each entry holds a
*normalized HomeLID* — (alias, home way), where the alias is the home
set index with the remote index bits stripped — plus a valid bit.

Two translations come out of this single structure:

- **HomeLID → RemoteLID** (compression path): derive the remote index
  from the home index's low bits, normalize the HomeLID, and search
  the WMT row; a hit's position *is* the remote way (Fig 9). A miss
  means the line is not guaranteed resident remotely and cannot be a
  reference.
- **RemoteLID → HomeLID** (write-back path, §III-G): the remote cache
  has no WMT and just sends its own LineID; the home cache reads
  WMT[index][way] and denormalizes.

Because it is installed/invalidated from the way-replacement info in
every request, the WMT tracks remote contents precisely, which is what
decouples CABLE from the replacement policy (§II-C).
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.cache.setassoc import CacheGeometry, LineId


class NormalizedHomeLid(NamedTuple):
    """(alias, home way): a HomeLID with the remote index bits removed.

    A NamedTuple rather than a dataclass: WMT rows are compared against
    a wanted entry on every reference-translation probe, and tuple
    equality runs in C.
    """

    alias: int
    home_way: int


class WayMapTable:
    """Home-side shadow of the remote cache's (set, way) layout."""

    def __init__(self, home: CacheGeometry, remote: CacheGeometry) -> None:
        if home.sets < remote.sets:
            raise ValueError("home cache must have at least as many sets as remote")
        if home.sets % remote.sets:
            raise ValueError("home/remote set counts must nest (powers of two)")
        self.home = home
        self.remote = remote
        self.alias_bits = home.index_bits - remote.index_bits
        self._remote_index_mask = remote.sets - 1
        # Width constants consulted on every translation (hot path).
        self._home_way_bits = home.way_bits
        self._home_way_mask = (1 << home.way_bits) - 1
        self._remote_way_bits = remote.way_bits
        self._remote_index_bits = remote.index_bits
        self._entries: List[List[Optional[NormalizedHomeLid]]] = [
            [None] * remote.ways for _ in range(remote.sets)
        ]
        self.stats = {"installs": 0, "invalidations": 0, "hits": 0, "misses": 0}

    # ------------------------------------------------------------------
    # Geometry / overhead
    # ------------------------------------------------------------------

    @property
    def entry_bits(self) -> int:
        """Bits per WMT entry: alias + home way + valid."""
        return self.alias_bits + self.home.way_bits + 1

    @property
    def storage_bits(self) -> int:
        return self.entry_bits * self.remote.sets * self.remote.ways

    def overhead_vs_home_data(self) -> float:
        """WMT storage as a fraction of home-cache data (Table III)."""
        return self.storage_bits / (self.home.size_bytes * 8)

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------

    def normalize(self, home_lid: LineId) -> NormalizedHomeLid:
        home_index, home_way = home_lid.unpack(self._home_way_bits)
        return NormalizedHomeLid(home_index >> self._remote_index_bits, home_way)

    def denormalize(self, entry: NormalizedHomeLid, remote_index: int) -> LineId:
        home_index = (entry.alias << self._remote_index_bits) | remote_index
        return LineId.pack(home_index, entry.home_way, self._home_way_bits)

    def remote_index_of(self, home_lid: LineId) -> int:
        home_index, __ = home_lid.unpack(self._home_way_bits)
        return home_index & self._remote_index_mask

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------

    def remote_lid_for(self, home_lid: LineId) -> Optional[LineId]:
        """HomeLID → RemoteLID, or None when not resident remotely."""
        home_index = home_lid >> self._home_way_bits
        remote_index = home_index & self._remote_index_mask
        wanted = (
            home_index >> self._remote_index_bits,
            home_lid & self._home_way_mask,
        )
        for way, entry in enumerate(self._entries[remote_index]):
            if entry == wanted:
                self.stats["hits"] += 1
                return LineId.pack(remote_index, way, self._remote_way_bits)
        self.stats["misses"] += 1
        return None

    def home_lid_for(self, remote_lid: LineId) -> Optional[LineId]:
        """RemoteLID → HomeLID (write-back translation, §III-G)."""
        remote_index, remote_way = remote_lid.unpack(self.remote.way_bits)
        entry = self._entries[remote_index][remote_way]
        if entry is None:
            return None
        return self.denormalize(entry, remote_index)

    # ------------------------------------------------------------------
    # Maintenance (driven by sync events)
    # ------------------------------------------------------------------

    def install(self, home_lid: LineId, remote_lid: LineId) -> Optional[LineId]:
        """Record that the home line now resides at *remote_lid*.

        Returns the HomeLID previously tracked in that remote slot (the
        displaced line), which sync uses to invalidate its signatures.
        """
        remote_index, remote_way = remote_lid.unpack(self.remote.way_bits)
        if (remote_index & self._remote_index_mask) != self.remote_index_of(home_lid):
            raise ValueError("home line cannot map to that remote set")
        previous = self._entries[remote_index][remote_way]
        displaced = self.denormalize(previous, remote_index) if previous else None
        self._entries[remote_index][remote_way] = self.normalize(home_lid)
        self.stats["installs"] += 1
        return displaced

    def invalidate_remote(self, remote_lid: LineId) -> Optional[LineId]:
        """Clear a remote slot, returning the HomeLID it tracked."""
        remote_index, remote_way = remote_lid.unpack(self.remote.way_bits)
        previous = self._entries[remote_index][remote_way]
        self._entries[remote_index][remote_way] = None
        if previous is None:
            return None
        self.stats["invalidations"] += 1
        return self.denormalize(previous, remote_index)

    def invalidate_home(self, home_lid: LineId) -> Optional[LineId]:
        """Clear the slot tracking *home_lid* (home-side eviction)."""
        remote_index = self.remote_index_of(home_lid)
        wanted = self.normalize(home_lid)
        for way, entry in enumerate(self._entries[remote_index]):
            if entry == wanted:
                self._entries[remote_index][way] = None
                self.stats["invalidations"] += 1
                return LineId.pack(remote_index, way, self.remote.way_bits)
        return None

    def occupancy(self) -> int:
        return sum(
            1 for row in self._entries for entry in row if entry is not None
        )
