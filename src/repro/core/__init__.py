"""CABLE — the paper's primary contribution.

The pieces map one-to-one onto the paper's architecture section:

- :mod:`repro.core.signature` — §III-A signature extraction.
- :mod:`repro.core.hashtable` — §III-B the signature hash table.
- :mod:`repro.core.search` — §III-C pre-ranking + CBV greedy ranking.
- :mod:`repro.core.wmt` — §III-D the way-map table.
- :mod:`repro.core.payload` — §III-E wire format & bit accounting.
- :mod:`repro.core.encoder` — the home encoder / remote decoder pair.
- :mod:`repro.core.sync` — §III-F synchronization.
- :mod:`repro.core.evictbuf` — §IV-A eviction buffer & EvictSeq.
- :mod:`repro.core.noninclusive` — §IV-C non-inclusive extension.
"""

from repro.core.config import CableConfig
from repro.core.signature import SignatureExtractor, H3Hash
from repro.core.hashtable import SignatureHashTable
from repro.core.wmt import WayMapTable
from repro.core.search import SearchPipeline, SearchResult
from repro.core.payload import Payload, PayloadKind
from repro.core.encoder import CableHomeEncoder, CableRemoteDecoder, CableLinkPair
from repro.core.evictbuf import EvictionBuffer
from repro.core.noninclusive import NonInclusivePair, NonInclusiveCableLink
from repro.core.pipeline import SearchPipelineModel, end_to_end_cycles
from repro.core.superwmt import SuperWmt, PooledWmtView

__all__ = [
    "CableConfig",
    "SignatureExtractor",
    "H3Hash",
    "SignatureHashTable",
    "WayMapTable",
    "SearchPipeline",
    "SearchResult",
    "Payload",
    "PayloadKind",
    "CableHomeEncoder",
    "CableRemoteDecoder",
    "CableLinkPair",
    "EvictionBuffer",
    "NonInclusivePair",
    "NonInclusiveCableLink",
    "SearchPipelineModel",
    "end_to_end_cycles",
    "SuperWmt",
    "PooledWmtView",
]
