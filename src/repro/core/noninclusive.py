"""Non-inclusive cache extension (§IV-C).

In Haswell-EP-style NUMA systems the home agent tracks every copy in
a directory for coherence, but its cache is *not* inclusive of the
remote caching agents. Two things change for CABLE:

1. **Home evictions don't back-invalidate.** The remote keeps its
   copy; the directory still knows about it. The home merely loses the
   *data*, so the line stops being referencable (its WMT entry and
   signatures are dropped) until it is refetched — CABLE degrades to
   opportunistic use of whatever home/remote sharing exists, exactly
   as the paper describes.

2. **Write-back compression loses its safety argument.** With
   inclusion, the remote knows its reference lines exist at the home;
   without it, they may not. The paper's fixes, both implemented:
   disable write-back compression (``writeback_mode="raw"``) or
   compress write-backs with a non-dictionary encoding
   (``writeback_mode="nodict"``, the default).
"""

from __future__ import annotations

from repro.cache.hierarchy import AccessOutcome, InclusivePair, TransferEvent
from repro.cache.line import CacheLine
from repro.core.config import CableConfig
from repro.core.encoder import CableLinkPair
from repro.core.payload import Payload, PayloadKind, choose_payload


class NonInclusivePair(InclusivePair):
    """A home/remote pair where home evictions leave the remote copy.

    A directory (here: the remote cache itself plus the WMT state the
    sync layer maintains) keeps coherence; only the *data* leaves the
    home cache.
    """

    def _handle_home_eviction(
        self, displaced: CacheLine, home_lid, outcome: AccessOutcome
    ) -> None:
        evicted_addr = displaced.tag
        if displaced.dirty:
            self.backing_write(evicted_addr, displaced.data)
        # No back-invalidation: just announce the home-side loss so
        # CABLE stops treating the line as a reference.
        self._emit(
            TransferEvent(
                kind="home_evict",
                line_addr=evicted_addr,
                data=displaced.data,
                state=displaced.state,
                home_lid=home_lid,
            ),
            outcome,
        )

    def remote_only_lines(self) -> int:
        """How many remote lines have no home copy (the non-inclusive
        residue that could never exist under InclusivePair)."""
        return sum(
            0 if self.home.contains(line.tag) else 1 for __, line in self.remote
        )

    def _home_fetch(self, line_addr: int, outcome: AccessOutcome):
        """On refetch of a line the remote still holds dirty (possible
        only without inclusion), the backing store is stale: pull the
        current data from the remote copy first, as the directory
        protocol would."""
        hit = self.home.lookup(line_addr, touch=False)
        if hit is None:
            remote_hit = self.remote.lookup(line_addr, touch=False)
            if remote_hit is not None and remote_hit[1].dirty:
                self.backing_write(line_addr, remote_hit[1].data)
        return super()._home_fetch(line_addr, outcome)


class NonInclusiveCableLink(CableLinkPair):
    """CABLE endpoints adapted for a non-inclusive hierarchy."""

    def __init__(
        self,
        config: CableConfig,
        pair: NonInclusivePair,
        verify: bool = True,
        writeback_mode: str = "nodict",
    ) -> None:
        if writeback_mode not in ("raw", "nodict"):
            raise ValueError("writeback_mode must be 'raw' or 'nodict'")
        self.writeback_mode = writeback_mode
        super().__init__(config, pair, verify=verify)

    def _transfer_writeback(self, event: TransferEvent) -> None:
        """§IV-C: the remote cannot assume its references exist at the
        home, so write-backs never carry reference pointers."""
        if not self.enabled or self.writeback_mode == "raw":
            payload = Payload(
                kind=PayloadKind.UNCOMPRESSED,
                line_addr=event.line_addr,
                line_bytes=len(event.data),
                raw=event.data,
                remotelid_bits=self.config.remotelid_bits,
            )
            self._account("writeback", event, payload, None)
            return
        block = self.remote_decoder.engine.compress_with_references(event.data, ())
        payload = choose_payload(
            event.line_addr,
            event.data,
            None,
            block,
            self.config.no_reference_threshold,
            self.config.remotelid_bits,
        )
        if self.verify and payload.kind is not PayloadKind.UNCOMPRESSED:
            decoded = self.remote_decoder.engine.decompress_with_references(
                payload.block, ()
            )
            if decoded != event.data:
                raise RuntimeError("non-dictionary write-back round-trip failed")
        self._account("writeback", event, payload, None)
