"""Pooled super-WMT for large multi-chip systems (§IV-D).

With one WMT per point-to-point link, an N-chip system carries N−1
full-size tables per chip. The paper's scalability note: "WMT
information can be pooled into a single, competitively shared
super-WMT/hash-table managed like a cache to decrease storage
overheads and improve scalability."

:class:`SuperWmt` implements that: one set-associative, LRU-managed
structure shared by all links, keyed by (link, remote set, remote
way). Because it is managed like a cache, entries can be *evicted* —
a translation miss just means the line is not referencable right now,
costing compression, never correctness, on the fill path. (A pooled
deployment pairs with non-dictionary write-backs, as in
:mod:`repro.core.noninclusive`, since the write-back translation can
no longer be guaranteed.)

Per-link :class:`PooledWmtView` objects expose the same interface as
:class:`~repro.core.wmt.WayMapTable`, so CABLE endpoints can use
either interchangeably.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.cache.setassoc import CacheGeometry, LineId
from repro.core.errors import SnapshotCorruptionError
from repro.core.wmt import NormalizedHomeLid
from repro.util.bits import bits_for


@dataclass
class _Entry:
    link_id: int
    remote_index: int
    remote_way: int
    value: NormalizedHomeLid
    stamp: int


class SuperWmt:
    """One capacity-bounded WMT shared by many links."""

    def __init__(
        self,
        home: CacheGeometry,
        remote: CacheGeometry,
        links: int,
        capacity_fraction: float = 0.5,
        ways: int = 4,
    ) -> None:
        """``capacity_fraction`` sizes the pool relative to the
        ``links`` dedicated WMTs it replaces (0.5 = half the storage).
        """
        if links < 1:
            raise ValueError("need at least one link")
        if not 0 < capacity_fraction <= 1:
            raise ValueError("capacity_fraction must be in (0, 1]")
        self.home = home
        self.remote = remote
        self.links = links
        self.ways = ways
        dedicated_entries = links * remote.sets * remote.ways
        capacity = max(ways, int(dedicated_entries * capacity_fraction))
        self.sets = max(1, capacity // ways)
        self._table: List[List[Optional[_Entry]]] = [
            [None] * ways for _ in range(self.sets)
        ]
        self._clock = 0
        self.stats = {"installs": 0, "hits": 0, "misses": 0, "evictions": 0}

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    def _set_of(self, link_id: int, remote_index: int, remote_way: int) -> int:
        key = (link_id * 0x9E3779B1 + remote_index * self.remote.ways + remote_way)
        return (key ^ (key >> 13)) % self.sets

    def _find(self, link_id: int, remote_index: int, remote_way: int):
        row = self._table[self._set_of(link_id, remote_index, remote_way)]
        for slot, entry in enumerate(row):
            if (
                entry is not None
                and entry.link_id == link_id
                and entry.remote_index == remote_index
                and entry.remote_way == remote_way
            ):
                return row, slot, entry
        return row, None, None

    # ------------------------------------------------------------------
    # WayMapTable-equivalent operations, per (link, slot)
    # ------------------------------------------------------------------

    def install(
        self, link_id: int, remote_index: int, remote_way: int, value: NormalizedHomeLid
    ) -> None:
        self._clock += 1
        self.stats["installs"] += 1
        row, slot, entry = self._find(link_id, remote_index, remote_way)
        if entry is not None:
            entry.value = value
            entry.stamp = self._clock
            return
        victim_slot = 0
        oldest = None
        for candidate, existing in enumerate(row):
            if existing is None:
                victim_slot = candidate
                oldest = None
                break
            if oldest is None or existing.stamp < oldest:
                oldest = existing.stamp
                victim_slot = candidate
        if row[victim_slot] is not None:
            self.stats["evictions"] += 1
        row[victim_slot] = _Entry(
            link_id=link_id,
            remote_index=remote_index,
            remote_way=remote_way,
            value=value,
            stamp=self._clock,
        )

    def lookup(
        self, link_id: int, remote_index: int, remote_way: int
    ) -> Optional[NormalizedHomeLid]:
        self._clock += 1
        __, slot, entry = self._find(link_id, remote_index, remote_way)
        if entry is None:
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        entry.stamp = self._clock
        return entry.value

    def invalidate(self, link_id: int, remote_index: int, remote_way: int) -> Optional[NormalizedHomeLid]:
        row, slot, entry = self._find(link_id, remote_index, remote_way)
        if entry is None:
            return None
        row[slot] = None
        return entry.value

    # ------------------------------------------------------------------
    # Storage accounting (the §IV-D argument)
    # ------------------------------------------------------------------

    @property
    def entry_bits(self) -> int:
        """Payload + tag + valid. The (link, remote set, remote way)
        key partially lives in the set index — as in any cache, only
        the key bits not implied by the set selection are stored."""
        payload = (self.home.index_bits - self.remote.index_bits) + self.home.way_bits
        key_bits = bits_for(self.links) + self.remote.index_bits + self.remote.way_bits
        set_bits = bits_for(self.sets)
        tag = max(1, key_bits - set_bits)
        return payload + tag + 1

    @property
    def storage_bits(self) -> int:
        return self.sets * self.ways * self.entry_bits

    def storage_vs_dedicated(self) -> float:
        """Pool storage relative to the dedicated per-link WMTs."""
        per_link_entry = (
            (self.home.index_bits - self.remote.index_bits) + self.home.way_bits + 1
        )
        dedicated = self.links * self.remote.sets * self.remote.ways * per_link_entry
        return self.storage_bits / dedicated

    # ------------------------------------------------------------------
    # Durability (snapshot / restore, repro.state)
    # ------------------------------------------------------------------

    _SNAP_HEADER = struct.Struct("<IHQI")  # sets, ways, clock, occupied
    _SNAP_ENTRY = struct.Struct("<IHHIHiHQ")
    # set, slot, link, remote_index, remote_way, alias, home_way, stamp

    def snapshot_state(self) -> bytes:
        occupied = [
            (set_index, slot, entry)
            for set_index, row in enumerate(self._table)
            for slot, entry in enumerate(row)
            if entry is not None
        ]
        parts = [
            self._SNAP_HEADER.pack(self.sets, self.ways, self._clock, len(occupied))
        ]
        for set_index, slot, entry in occupied:
            parts.append(
                self._SNAP_ENTRY.pack(
                    set_index,
                    slot,
                    entry.link_id,
                    entry.remote_index,
                    entry.remote_way,
                    entry.value.alias,
                    entry.value.home_way,
                    entry.stamp,
                )
            )
        return b"".join(parts)

    def restore_state(self, data: bytes) -> None:
        try:
            self._restore_state(data)
        except (struct.error, ValueError, IndexError) as exc:
            raise SnapshotCorruptionError(
                f"SuperWMT snapshot unparseable: {exc}"
            ) from exc

    def _restore_state(self, data: bytes) -> None:
        sets, ways, clock, count = self._SNAP_HEADER.unpack_from(data, 0)
        if sets != self.sets or ways != self.ways:
            raise SnapshotCorruptionError(
                f"SuperWMT snapshot geometry {sets}x{ways} does not match "
                f"{self.sets}x{self.ways}"
            )
        expected = self._SNAP_HEADER.size + count * self._SNAP_ENTRY.size
        if len(data) != expected:
            raise SnapshotCorruptionError(
                f"SuperWMT snapshot is {len(data)} bytes, expected {expected}"
            )
        table: List[List[Optional[_Entry]]] = [[None] * ways for _ in range(sets)]
        offset = self._SNAP_HEADER.size
        for _ in range(count):
            (
                set_index,
                slot,
                link_id,
                remote_index,
                remote_way,
                alias,
                home_way,
                stamp,
            ) = self._SNAP_ENTRY.unpack_from(data, offset)
            offset += self._SNAP_ENTRY.size
            if set_index >= sets or slot >= ways:
                raise SnapshotCorruptionError(
                    f"SuperWMT snapshot slot ({set_index}, {slot}) out of range"
                )
            table[set_index][slot] = _Entry(
                link_id=link_id,
                remote_index=remote_index,
                remote_way=remote_way,
                value=NormalizedHomeLid(alias, home_way),
                stamp=stamp,
            )
        self._table = table
        self._clock = clock

    def reset_state(self) -> None:
        self._table = [[None] * self.ways for _ in range(self.sets)]
        self._clock = 0


class PooledWmtView:
    """A per-link facade with the :class:`WayMapTable` interface."""

    def __init__(self, pool: SuperWmt, link_id: int) -> None:
        if not 0 <= link_id < pool.links:
            raise ValueError("link_id out of range")
        self.pool = pool
        self.link_id = link_id
        self.home = pool.home
        self.remote = pool.remote
        self._remote_index_mask = pool.remote.sets - 1

    # -- normalization (same math as WayMapTable) -----------------------

    def normalize(self, home_lid: LineId) -> NormalizedHomeLid:
        home_index, home_way = home_lid.unpack(self.home.way_bits)
        return NormalizedHomeLid(home_index >> self.remote.index_bits, home_way)

    def denormalize(self, entry: NormalizedHomeLid, remote_index: int) -> LineId:
        home_index = (entry.alias << self.remote.index_bits) | remote_index
        return LineId.pack(home_index, entry.home_way, self.home.way_bits)

    def remote_index_of(self, home_lid: LineId) -> int:
        home_index, __ = home_lid.unpack(self.home.way_bits)
        return home_index & self._remote_index_mask

    # -- translations ----------------------------------------------------

    def remote_lid_for(self, home_lid: LineId) -> Optional[LineId]:
        remote_index = self.remote_index_of(home_lid)
        wanted = self.normalize(home_lid)
        for way in range(self.remote.ways):
            value = self.pool.lookup(self.link_id, remote_index, way)
            if value == wanted:
                return LineId.pack(remote_index, way, self.remote.way_bits)
        return None

    def home_lid_for(self, remote_lid: LineId) -> Optional[LineId]:
        remote_index, remote_way = remote_lid.unpack(self.remote.way_bits)
        value = self.pool.lookup(self.link_id, remote_index, remote_way)
        if value is None:
            return None
        return self.denormalize(value, remote_index)

    # -- maintenance -------------------------------------------------------

    def install(self, home_lid: LineId, remote_lid: LineId) -> Optional[LineId]:
        remote_index, remote_way = remote_lid.unpack(self.remote.way_bits)
        if (remote_index & self._remote_index_mask) != self.remote_index_of(home_lid):
            raise ValueError("home line cannot map to that remote set")
        previous = self.pool.lookup(self.link_id, remote_index, remote_way)
        displaced = self.denormalize(previous, remote_index) if previous else None
        self.pool.install(
            self.link_id, remote_index, remote_way, self.normalize(home_lid)
        )
        return displaced

    def invalidate_remote(self, remote_lid: LineId) -> Optional[LineId]:
        remote_index, remote_way = remote_lid.unpack(self.remote.way_bits)
        previous = self.pool.invalidate(self.link_id, remote_index, remote_way)
        if previous is None:
            return None
        return self.denormalize(previous, remote_index)

    def invalidate_home(self, home_lid: LineId) -> Optional[LineId]:
        remote_index = self.remote_index_of(home_lid)
        wanted = self.normalize(home_lid)
        for way in range(self.remote.ways):
            value = self.pool.lookup(self.link_id, remote_index, way)
            if value == wanted:
                self.pool.invalidate(self.link_id, remote_index, way)
                return LineId.pack(remote_index, way, self.remote.way_bits)
        return None
