"""Synchronization invariants and their auditor (§III-F).

The event-driven synchronization itself is wired in
:class:`repro.core.encoder.CableLinkPair`: coherence events from the
inclusive pair drive hash-table insertion/invalidation and WMT
maintenance on both endpoints. This module provides the *auditor* —
an exhaustive consistency checker used by tests and failure-injection
studies to prove the invariants hold after arbitrary access streams:

I1. **WMT precision** — every valid WMT entry maps a remote (set, way)
    that actually holds the line whose HomeLID is stored, and every
    remote-resident line is tracked (the WMT is exact, not
    approximate; this is what decouples CABLE from replacement
    policy).
I2. **Reference safety** — every line the WMT exposes as referencable
    that is SHARED at home has identical data in both caches.
I3. **Hash-table soundness** — hash-table entries may be stale (that
    is tolerated by design), but every *useful* entry points at a
    home slot; no entry can cause incorrect decompression because
    referencability is gated by I1+I2.
I4. **Inclusivity** — every remote line is home-resident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cache.line import CoherenceState
from repro.cache.setassoc import LineId
from repro.core.encoder import CableLinkPair


@dataclass
class AuditReport:
    """Outcome of a synchronization audit."""

    violations: List[str] = field(default_factory=list)
    wmt_entries_checked: int = 0
    remote_lines_checked: int = 0
    hash_entries_checked: int = 0
    #: Corrective actions applied when auditing with ``repair=True``,
    #: by category ("wmt", "hash", "evictbuf", "breaker").
    repaired: Dict[str, int] = field(default_factory=dict)

    @property
    def repairs(self) -> int:
        """Total corrective actions across all categories."""
        return sum(self.repaired.values())

    @property
    def ok(self) -> bool:
        return not self.violations


def audit(link: CableLinkPair, repair: bool = False) -> AuditReport:
    """Check invariants I1–I4 on a live CABLE link pair.

    With ``repair=True`` any violation triggers a metadata resync —
    the model of a link retrain: the WMT is rebuilt from the two
    caches' actual contents and out-of-range hash entries are
    scrubbed. Repairs are counted in ``report.repairs``; the returned
    violations describe the state *before* repair.
    """
    report = AuditReport()
    pair = link.pair
    wmt = link.home_encoder.wmt
    home, remote = pair.home, pair.remote

    # I4 — inclusivity.
    for remote_lid, line in remote:
        report.remote_lines_checked += 1
        if not home.contains(line.tag):
            report.violations.append(
                f"I4: remote line {line.tag:#x} missing from home cache"
            )

    # I1 + I2 — WMT precision and reference safety.
    for remote_lid, line in remote:
        home_lid = wmt.home_lid_for(remote_lid)
        if home_lid is None:
            report.violations.append(
                f"I1: remote slot {int(remote_lid)} holding {line.tag:#x} untracked"
            )
            continue
        report.wmt_entries_checked += 1
        home_line = home.read_by_lineid(home_lid)
        if home_line is None:
            report.violations.append(
                f"I1: WMT maps remote slot {int(remote_lid)} to empty home slot"
            )
            continue
        if home_line.tag != line.tag:
            report.violations.append(
                f"I1: WMT maps remote {line.tag:#x} to home {home_line.tag:#x}"
            )
            continue
        if home_line.state is CoherenceState.SHARED:
            if home_line.data != line.data:
                report.violations.append(
                    f"I2: shared line {line.tag:#x} differs between caches"
                )
        # Reverse direction: the forward translation must round-trip.
        back = wmt.remote_lid_for(home_lid)
        if back != remote_lid:
            report.violations.append(
                f"I1: WMT round-trip failed for line {line.tag:#x}"
            )

    # I1 (reverse) — no dangling WMT entries: every valid entry's
    # remote slot must actually hold a line. A lost eviction notice
    # leaves exactly this kind of dangling entry behind (mismatched
    # slots are already reported by the forward pass above).
    for remote_index, row in enumerate(wmt._entries):
        for remote_way, entry in enumerate(row):
            if entry is None:
                continue
            remote_lid = LineId.pack(remote_index, remote_way, wmt.remote.way_bits)
            if remote.read_by_lineid(remote_lid) is None:
                report.violations.append(
                    f"I1: WMT tracks empty remote slot {int(remote_lid)}"
                )

    # I3 — hash-table soundness: every stored LineID must at least be a
    # plausible home slot (stale is fine; out-of-range is a bug).
    geometry = home.geometry
    for bucket in link.home_encoder.hash_table._buckets.values():
        for lid in bucket:
            report.hash_entries_checked += 1
            index, way = lid.unpack(geometry.way_bits)
            if not (0 <= index < geometry.sets and 0 <= way < geometry.ways):
                report.violations.append(f"I3: hash entry {int(lid)} out of range")

    # I5 — eviction-buffer hygiene: no entry may linger past its
    # acknowledgement, and no (slot, address) pair may shadow an older
    # duplicate (rescue scans newest-first, so the older copy is dead
    # weight that a replayed restore can leave behind).
    buffer = link.remote_decoder.evict_buffer
    seen_keys = set()
    for entry in reversed(buffer._entries):
        if entry.seq <= buffer._acked:
            report.violations.append(
                f"I5: eviction-buffer entry seq {entry.seq} outlived its "
                f"acknowledgement ({buffer._acked})"
            )
            continue
        key = (entry.remote_lid, entry.line_addr)
        if key in seen_keys:
            report.violations.append(
                f"I5: eviction-buffer entry seq {entry.seq} shadowed by a "
                f"newer copy of line {entry.line_addr:#x}"
            )
        seen_keys.add(key)

    # B1 — breaker liveness: an open breaker whose cooldown has elapsed
    # must re-arm on the next transfer; one stuck past that point (e.g.
    # restored from a stale snapshot) keeps the link degraded for no
    # reason.
    breaker = (
        link.recovery_layer.breaker if link.recovery_layer is not None else None
    )
    if breaker is not None and breaker.is_open:
        elapsed = breaker.clock() - breaker._opened_at
        if elapsed > breaker.policy.breaker_cooldown:
            report.violations.append(
                f"B1: breaker open for {elapsed} ticks, cooldown is "
                f"{breaker.policy.breaker_cooldown}"
            )

    if repair and not report.ok:
        report.repaired = _repair(link)
    return report


def _repair(link: CableLinkPair) -> Dict[str, int]:
    """Resynchronize metadata from ground truth (the cache arrays).

    Rebuilds the WMT so it maps exactly the remote cache's current
    contents, scrubs out-of-range LineIDs from both signature hash
    tables, drops acknowledged/shadowed eviction-buffer residue, and
    closes a breaker stuck open past its cooldown. Stale-but-in-range
    hash entries are left alone — they are tolerated by design (I3)
    and age out FIFO-style. Returns per-category repair counts.
    """
    repaired = {"wmt": 0, "hash": 0, "evictbuf": 0, "breaker": 0}
    pair = link.pair
    wmt = link.home_encoder.wmt
    home, remote = pair.home, pair.remote

    home_by_tag = {line.tag: home_lid for home_lid, line in home}
    wanted = [[None] * wmt.remote.ways for _ in range(wmt.remote.sets)]
    for remote_lid, line in remote:
        home_lid = home_by_tag.get(line.tag)
        if home_lid is None:
            continue  # an I4 violation; the WMT must not advertise it
        remote_index, remote_way = remote_lid.unpack(wmt.remote.way_bits)
        wanted[remote_index][remote_way] = wmt.normalize(home_lid)
    for remote_index, row in enumerate(wmt._entries):
        for remote_way, entry in enumerate(row):
            if entry != wanted[remote_index][remote_way]:
                repaired["wmt"] += 1
    wmt._entries = wanted
    if repaired["wmt"]:
        # Bulk assignment bypasses install()/invalidate(): bump the
        # generation by hand or the batch pipeline's cross-block result
        # cache keeps replaying pre-repair referencability.
        wmt.generation += 1

    for table, geometry in (
        (link.home_encoder.hash_table, home.geometry),
        (link.remote_decoder.hash_table, remote.geometry),
    ):
        scrubbed = False
        for bucket in table._buckets.values():
            kept = []
            for lid in bucket:
                index, way = lid.unpack(geometry.way_bits)
                if 0 <= index < geometry.sets and 0 <= way < geometry.ways:
                    kept.append(lid)
                else:
                    repaired["hash"] += 1
            if len(kept) != len(bucket):
                bucket[:] = kept
                scrubbed = True
        if scrubbed:
            table.generation += 1  # same bulk-mutation rule as the WMT

    buffer = link.remote_decoder.evict_buffer
    seen_keys = set()
    kept_entries = []
    for entry in reversed(buffer._entries):
        key = (entry.remote_lid, entry.line_addr)
        if entry.seq <= buffer._acked or key in seen_keys:
            repaired["evictbuf"] += 1
            continue
        seen_keys.add(key)
        kept_entries.append(entry)
    if repaired["evictbuf"]:
        kept_entries.reverse()
        buffer._entries = kept_entries

    breaker = (
        link.recovery_layer.breaker if link.recovery_layer is not None else None
    )
    if breaker is not None and breaker.is_open:
        elapsed = breaker.clock() - breaker._opened_at
        if elapsed > breaker.policy.breaker_cooldown:
            breaker.tick_open()  # re-arms: elapsed >= cooldown
            repaired["breaker"] += 1
    return repaired
