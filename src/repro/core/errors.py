"""Typed failure hierarchy for the CABLE protocol stack.

CABLE's correctness argument (§III-B, §IV-A) is that heuristics may be
arbitrarily wrong but the protocol must never *silently* corrupt data.
That argument only holds if failures are distinguishable: a corrupted
wire payload, a reference lost to an in-flight eviction and a genuine
synchronization bug all need different handling (NACK/retransmit,
retransmit-as-raw, crash loudly). This module is the single place the
whole stack draws its exception types from.

Hierarchy::

    DecompressionError                 a payload failed to reconstruct
    ├── WireDecodeError                the *bits* could not be parsed
    │   ├── TruncatedPayloadError      stream ended mid-token
    │   ├── CorruptPayloadError        bits parse to impossible tokens
    │   │   └── CrcMismatchError       frame checksum failed
    │   └── SequenceError              out-of-order / replayed frame
    ├── StaleReferenceError            a reference left the remote
    │                                  cache (and eviction buffer)
    │                                  while the response was in flight
    └── LinkRecoveryError              retries *and* the raw fallback
                                       were exhausted — the link is down

``WireDecodeError`` and ``StaleReferenceError`` are *recoverable*: the
receiver NACKs and the sender retransmits (eventually as a raw,
reference-free line). ``LinkRecoveryError`` and a bare
``DecompressionError`` are not — they indicate a dead wire or a
protocol bug respectively.
"""

from __future__ import annotations


class DecompressionError(RuntimeError):
    """A payload failed to reconstruct the original line — a
    synchronization bug, never expected in a correct configuration."""


class WireDecodeError(DecompressionError):
    """The wire bits could not be parsed back into a payload.

    Distinguishes transmission corruption from programming bugs: the
    decode paths in :mod:`repro.link.wire` raise (subclasses of) this
    for any malformed input, so callers can NACK instead of crashing.
    """


class TruncatedPayloadError(WireDecodeError):
    """The bit stream ended in the middle of a token."""


class CorruptPayloadError(WireDecodeError):
    """The bits parse to an impossible token stream (invalid opcode,
    token overrun, out-of-range field)."""


class CrcMismatchError(CorruptPayloadError):
    """The frame checksum did not match its payload."""


class SequenceError(WireDecodeError):
    """A frame arrived with an unexpected sequence tag (reordered or
    replayed); the receiver discards it and NACKs."""


class StaleReferenceError(DecompressionError):
    """A reference pointer resolves to nothing usable: the line left
    the remote cache (and the eviction buffer) while the response was
    in flight (§IV-A), or the WMT translation went stale.

    Recoverable — the remote NACKs and the home retransmits without
    references.
    """


class LinkRecoveryError(DecompressionError):
    """Bounded retries and the retransmit-as-raw fallback were both
    exhausted; the link cannot deliver this line."""


class EvictionBufferOverflowError(RuntimeError):
    """The eviction buffer was asked to hold more than its capacity
    under the ``"strict"`` overflow policy."""


class SessionAdmissionError(RuntimeError):
    """Base class for link-service session admission refusals
    (:mod:`repro.serve`). Deliberately *not* a
    :class:`DecompressionError`: these surface at the OPEN handshake,
    before any payload exists. The service answers the client with a
    REJECTED flag on the wire; the typed hierarchy exists so in-process
    callers (router, supervisor, tests) can tell the refusals apart."""


class DuplicateSessionTagError(SessionAdmissionError):
    """A new OPEN carried a client tag that is already attached to a
    live session. Tags are the sharding identity — two concurrent
    sessions with one tag would split a client's access stream across
    divergent endpoint states."""


class SessionLimitError(SessionAdmissionError):
    """The service is at its ``max_sessions`` cap; the open is refused
    rather than admitting unbounded state."""


class StateRecoveryError(RuntimeError):
    """Base class for endpoint-state persistence failures
    (:mod:`repro.state`). Deliberately *not* a
    :class:`DecompressionError`: these surface while an endpoint is
    restoring after a crash, not while a payload is decoding."""


class SnapshotCorruptionError(StateRecoveryError):
    """A snapshot failed its structural or checksum validation — a
    torn write, a flipped byte, a truncated blob. Always detected,
    never trusted: the restore path falls back to an older snapshot
    or to ground-truth resynchronization."""


class JournalReplayError(StateRecoveryError):
    """The metadata journal cannot bridge from the chosen snapshot to
    the present (records were truncated past the snapshot's epoch, or
    the journal itself failed validation). The restore degrades to
    incremental audit-rebuild."""


class ReplicationError(StateRecoveryError):
    """Base class for warm-standby replication failures
    (:mod:`repro.replica`). Like its siblings these surface on the
    replication control path, never while a payload is decoding — a
    standby that cannot keep up degrades to snapshot catch-up, it does
    not corrupt traffic."""


class BatchIntegrityError(ReplicationError):
    """A shipped journal batch failed its checksum or structural
    validation (torn/truncated/bit-flipped on the replication stream).
    The standby discards it and requests snapshot catch-up — a damaged
    batch is never half-applied."""


class BatchGapError(ReplicationError):
    """Journal batches arrived out of sequence (a batch was dropped or
    reordered on the replication stream). Applying across a gap would
    silently diverge, so the standby refuses and requests snapshot
    catch-up instead."""
