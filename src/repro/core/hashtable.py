"""The signature hash table (§III-B).

A standard (non-CAM) SRAM structure mapping ``hash(signature) →
bucket of LineIDs``. It is deliberately inexact: different signatures
can land in the same bucket (hash collisions, Fig 7), and buckets only
hold two LineIDs by default, so lookups return *candidates* that the
search pipeline must verify against real data.

Sizing is expressed as a scale relative to "full-sized" — as many
entries as there are lines in the home cache (§IV-D). Fig 21 sweeps
the scale from 2× down to 1/2048× and relies on the graceful
degradation this FIFO-per-bucket design provides.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.setassoc import LineId
from repro.core.errors import SnapshotCorruptionError
from repro.obs.registry import METRICS, MetricsRegistry

# Pre-bound registry mirrors. Lookups (≤16 per search) are left
# unmirrored on purpose — the search pipeline publishes probe counts in
# bulk — so the hot path pays nothing for observability here.
_CTR_INSERTS = METRICS.counter("hashtable.inserts")
_CTR_BUCKET_EVICTIONS = METRICS.counter("hashtable.bucket_evictions")


def _round_up_pow2(value: int) -> int:
    return 1 << max(value - 1, 0).bit_length()


class SignatureHashTable:
    """Bucketed signature → LineID index with FIFO bucket replacement."""

    def __init__(self, entries: int, bucket_entries: int = 2) -> None:
        if entries < 1:
            raise ValueError("hash table needs at least one entry")
        if bucket_entries < 1:
            raise ValueError("buckets need at least one slot")
        self.entries = _round_up_pow2(entries)
        self.bucket_entries = bucket_entries
        self._mask = self.entries - 1
        self._buckets: Dict[int, List[LineId]] = {}
        #: Bumped on every bucket mutation. The batched search keys its
        #: cross-block result cache on this: an unchanged generation
        #: proves every bucket is exactly as it was, so cached probe
        #: outcomes are still byte-identical to fresh lookups.
        self.generation = 0
        self.stats = {
            "inserts": 0,
            "bucket_evictions": 0,
            "lookups": 0,
            "hits": 0,
            "removals": 0,
            "stale_removals": 0,
        }
        #: Durability hook (:mod:`repro.state`): reports effective
        #: single-entry mutations. Bulk scrubs
        #: (:meth:`remove_lineid_everywhere`, :meth:`clear`) are *not*
        #: journaled — they happen during repair/resync, after which the
        #: manager cuts a fresh checkpoint; a replay that misses them
        #: only resurrects stale-but-in-range entries, which I3
        #: tolerates by design.
        self.journal: Optional[Callable] = None

    @classmethod
    def sized_for(
        cls, home_cache_lines: int, scale: float = 1.0, bucket_entries: int = 2
    ) -> "SignatureHashTable":
        """Build a table scaled relative to "full-sized" (§IV-D)."""
        entries = max(1, int(home_cache_lines * scale))
        return cls(entries=entries, bucket_entries=bucket_entries)

    def _slot(self, signature: int) -> int:
        # The signature is already an H3 hash; fold it onto the table.
        return (signature ^ (signature >> 16)) & self._mask

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, signature: int, lid: LineId) -> None:
        """Record that the line at *lid* produced *signature*.

        A LineID already present in the bucket is refreshed (moved to
        the newest slot) rather than duplicated; otherwise the oldest
        occupant falls out FIFO-style.
        """
        slot = self._slot(signature)
        bucket = self._buckets.setdefault(slot, [])
        if lid in bucket:
            bucket.remove(lid)
        bucket.append(lid)
        self.generation += 1
        self.stats["inserts"] += 1
        if METRICS.enabled:
            _CTR_INSERTS.inc()
        while len(bucket) > self.bucket_entries:
            bucket.pop(0)
            self.stats["bucket_evictions"] += 1
            if METRICS.enabled:
                _CTR_BUCKET_EVICTIONS.inc()
        if self.journal is not None:
            self.journal("hash_insert", signature, int(lid))

    def remove(self, signature: int, lid: LineId) -> bool:
        """Remove *lid* from *signature*'s bucket if present (§III-F).

        Returns True when an entry was actually removed. A miss is
        normal — the entry may have aged out of the bucket already.
        """
        slot = self._slot(signature)
        bucket = self._buckets.get(slot)
        if bucket and lid in bucket:
            bucket.remove(lid)
            self.generation += 1
            self.stats["removals"] += 1
            if self.journal is not None:
                self.journal("hash_remove", signature, int(lid))
            return True
        self.stats["stale_removals"] += 1
        return False

    def remove_lineid_everywhere(self, lid: LineId) -> int:
        """Scrub a LineID from all buckets (slow path; tests and the
        non-inclusive extension use it, hardware would not)."""
        removed = 0
        for bucket in self._buckets.values():
            while lid in bucket:
                bucket.remove(lid)
                removed += 1
        if removed:
            self.generation += 1
        return removed

    def clear(self) -> None:
        self._buckets.clear()
        self.generation += 1

    def reconfigure(self, entries: int, bucket_entries: int) -> None:
        """Re-shape the table in place (online knob tuning, §IV-D sweep).

        Drops every bucket — the caller must rebuild the index from
        cache ground truth afterwards and cut a fresh durability
        checkpoint (reshaping bypasses the journal, and old snapshots
        no longer match the new shape). Mutating in place rather than
        swapping the object keeps every live reference (pipelines,
        durability managers, replicators) valid.
        """
        if entries < 1:
            raise ValueError("hash table needs at least one entry")
        if bucket_entries < 1:
            raise ValueError("buckets need at least one slot")
        self.entries = _round_up_pow2(entries)
        self.bucket_entries = bucket_entries
        self._mask = self.entries - 1
        self._buckets.clear()
        self.generation += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, signature: int) -> Tuple[LineId, ...]:
        """All candidate LineIDs in *signature*'s bucket (maybe stale,
        maybe collided — the search pipeline verifies)."""
        self.stats["lookups"] += 1
        bucket = self._buckets.get(self._slot(signature))
        if bucket:
            self.stats["hits"] += 1
            return tuple(bucket)
        return ()

    def lookup_block(self, signatures) -> List[Tuple[LineId, ...]]:
        """Buckets for many (distinct) signatures, stats untouched.

        The batched search probes each distinct signature once and
        replays the per-probe accounting through :meth:`count_probes`,
        so the stats dict ends up exactly where per-signature
        :meth:`lookup` calls would have left it.
        """
        get = self._buckets.get
        slot = self._slot
        out: List[Tuple[LineId, ...]] = []
        for signature in signatures:
            bucket = get(slot(signature))
            out.append(tuple(bucket) if bucket else ())
        return out

    def count_probes(self, lookups: int, hits: int) -> None:
        """Roll up the accounting for *lookups* probes, *hits* of which
        found a non-empty bucket (batched-search companion of
        :meth:`lookup_block`)."""
        self.stats["lookups"] += lookups
        self.stats["hits"] += hits

    def occupancy(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def publish_stats(
        self,
        registry: Optional[MetricsRegistry] = None,
        prefix: str = "hashtable",
    ) -> None:
        """Mirror the stats dict and occupancy into registry gauges."""
        reg = registry if registry is not None else METRICS
        for name, value in self.stats.items():
            reg.gauge(f"{prefix}.{name}").set(value)
        reg.gauge(f"{prefix}.occupancy").set(self.occupancy())

    def __contains__(self, signature: int) -> bool:
        bucket = self._buckets.get(self._slot(signature))
        return bool(bucket)

    # ------------------------------------------------------------------
    # Durability (snapshot / restore, repro.state)
    # ------------------------------------------------------------------

    _SNAP_HEADER = struct.Struct("<IHI")  # entries, bucket_entries, buckets
    _SNAP_BUCKET = struct.Struct("<IH")  # slot, occupant count
    _SNAP_LID = struct.Struct("<I")

    def snapshot_state(self) -> bytes:
        occupied = [
            (slot, bucket)
            for slot, bucket in sorted(self._buckets.items())
            if bucket
        ]
        parts = [
            self._SNAP_HEADER.pack(self.entries, self.bucket_entries, len(occupied))
        ]
        for slot, bucket in occupied:
            parts.append(self._SNAP_BUCKET.pack(slot, len(bucket)))
            for lid in bucket:
                parts.append(self._SNAP_LID.pack(int(lid) & 0xFFFFFFFF))
        return b"".join(parts)

    def restore_state(self, data: bytes) -> None:
        try:
            self._restore_state(data)
        except (struct.error, ValueError) as exc:
            raise SnapshotCorruptionError(
                f"hash-table snapshot unparseable: {exc}"
            ) from exc

    def _restore_state(self, data: bytes) -> None:
        entries, bucket_entries, count = self._SNAP_HEADER.unpack_from(data, 0)
        if entries != self.entries or bucket_entries != self.bucket_entries:
            raise SnapshotCorruptionError(
                f"hash-table snapshot shape {entries}/{bucket_entries} does "
                f"not match {self.entries}/{self.bucket_entries}"
            )
        offset = self._SNAP_HEADER.size
        buckets: Dict[int, List[LineId]] = {}
        for _ in range(count):
            slot, occupants = self._SNAP_BUCKET.unpack_from(data, offset)
            offset += self._SNAP_BUCKET.size
            bucket: List[LineId] = []
            for _ in range(occupants):
                (lid,) = self._SNAP_LID.unpack_from(data, offset)
                offset += self._SNAP_LID.size
                bucket.append(LineId(lid))
            buckets[slot] = bucket
        if offset != len(data):
            raise SnapshotCorruptionError(
                f"{len(data) - offset} trailing bytes in hash-table snapshot"
            )
        self._buckets = buckets
        self.generation += 1

    def reset_state(self) -> None:
        self._buckets.clear()
        self.generation += 1
