"""Eviction buffer and EvictSeq protocol (§IV-A).

The race CABLE must survive: the home cache selects a reference that
the remote cache is concurrently evicting — a response pointing at a
missing reference cannot be decompressed.

The paper's fix, implemented here: every remote eviction is assigned a
monotonically increasing *EvictSeq* and a copy of the evicted line is
parked in a small buffer. The EvictSeq of the latest eviction rides on
the next memory request; the home cache echoes the last EvictSeq it
has *processed* in each response, telling the remote which buffer
entries can never be referenced again and are safe to drop. This works
even over out-of-order transports such as Intel QPI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.setassoc import LineId
from repro.core.errors import EvictionBufferOverflowError

#: Valid overflow policies for a full buffer (see :class:`EvictionBuffer`).
OVERFLOW_POLICIES = ("drop-oldest", "strict")


@dataclass(frozen=True)
class BufferedEviction:
    seq: int
    remote_lid: LineId
    line_addr: int
    data: bytes


class EvictionBuffer:
    """Remote-side FIFO of unacknowledged evictions.

    ``overflow_policy`` makes the bounded-capacity behaviour explicit:

    - ``"drop-oldest"`` (default, what hardware does): a record into a
      full buffer sacrifices the oldest unacknowledged entry and bumps
      ``stats["overflows"]``. Correct as long as the dropped entry is
      older than every in-flight reference; a reference that *did*
      need it surfaces as a failed rescue, never as silent corruption.
    - ``"strict"``: raise
      :class:`~repro.core.errors.EvictionBufferOverflowError` instead.
      Tests use this to prove a buffer sizing never overflows under a
      given workload.
    """

    def __init__(
        self, capacity: int = 16, overflow_policy: str = "drop-oldest"
    ) -> None:
        if capacity < 1:
            raise ValueError("eviction buffer needs at least one entry")
        if overflow_policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow_policy must be one of {OVERFLOW_POLICIES}, "
                f"got {overflow_policy!r}"
            )
        self.capacity = capacity
        self.overflow_policy = overflow_policy
        self._entries: List[BufferedEviction] = []
        self._next_seq = 1
        self._acked = 0
        self.stats = {
            "recorded": 0,
            "acknowledged": 0,
            "rescues": 0,
            "overflows": 0,
            "high_water": 0,
        }

    # ------------------------------------------------------------------
    # Remote side
    # ------------------------------------------------------------------

    def record(self, remote_lid: LineId, line_addr: int, data: bytes) -> int:
        """Park a copy of an evicted line; returns its EvictSeq."""
        if (
            len(self._entries) >= self.capacity
            and self.overflow_policy == "strict"
        ):
            raise EvictionBufferOverflowError(
                f"eviction buffer full ({self.capacity} entries) recording "
                f"line {line_addr:#x}"
            )
        seq = self._next_seq
        self._next_seq += 1
        self._entries.append(
            BufferedEviction(seq=seq, remote_lid=remote_lid, line_addr=line_addr, data=data)
        )
        self.stats["recorded"] += 1
        if len(self._entries) > self.capacity:
            # A full buffer would stall evictions in hardware; the model
            # drops the oldest and counts it so tests can detect the
            # condition. Correctness is preserved as long as the drop
            # is older than every in-flight reference.
            self._entries.pop(0)
            self.stats["overflows"] += 1
        self.stats["high_water"] = max(self.stats["high_water"], len(self._entries))
        return seq

    @property
    def last_seq(self) -> int:
        """The EvictSeq to embed in the next outgoing request."""
        return self._next_seq - 1

    def acknowledge(self, seq: int) -> None:
        """Home has processed evictions up to *seq*; drop them."""
        if seq <= self._acked:
            return
        self._acked = seq
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.seq > seq]
        self.stats["acknowledged"] += before - len(self._entries)

    # ------------------------------------------------------------------
    # Decompression fallback
    # ------------------------------------------------------------------

    def rescue(self, remote_lid: LineId, line_addr: int) -> Optional[bytes]:
        """Recover an evicted reference by (slot, address), newest first."""
        for entry in reversed(self._entries):
            if entry.remote_lid == remote_lid and entry.line_addr == line_addr:
                self.stats["rescues"] += 1
                return entry.data
        return None

    def __len__(self) -> int:
        return len(self._entries)
