"""Eviction buffer and EvictSeq protocol (§IV-A).

The race CABLE must survive: the home cache selects a reference that
the remote cache is concurrently evicting — a response pointing at a
missing reference cannot be decompressed.

The paper's fix, implemented here: every remote eviction is assigned a
monotonically increasing *EvictSeq* and a copy of the evicted line is
parked in a small buffer. The EvictSeq of the latest eviction rides on
the next memory request; the home cache echoes the last EvictSeq it
has *processed* in each response, telling the remote which buffer
entries can never be referenced again and are safe to drop. This works
even over out-of-order transports such as Intel QPI.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cache.setassoc import LineId
from repro.core.errors import EvictionBufferOverflowError, SnapshotCorruptionError

#: Valid overflow policies for a full buffer (see :class:`EvictionBuffer`).
OVERFLOW_POLICIES = ("drop-oldest", "strict")


@dataclass(frozen=True)
class BufferedEviction:
    seq: int
    remote_lid: LineId
    line_addr: int
    data: bytes


class EvictionBuffer:
    """Remote-side FIFO of unacknowledged evictions.

    ``overflow_policy`` makes the bounded-capacity behaviour explicit:

    - ``"drop-oldest"`` (default, what hardware does): a record into a
      full buffer sacrifices the oldest unacknowledged entry and bumps
      ``stats["overflows"]``. Correct as long as the dropped entry is
      older than every in-flight reference; a reference that *did*
      need it surfaces as a failed rescue, never as silent corruption.
    - ``"strict"``: raise
      :class:`~repro.core.errors.EvictionBufferOverflowError` instead.
      Tests use this to prove a buffer sizing never overflows under a
      given workload.
    """

    def __init__(
        self, capacity: int = 16, overflow_policy: str = "drop-oldest"
    ) -> None:
        if capacity < 1:
            raise ValueError("eviction buffer needs at least one entry")
        if overflow_policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow_policy must be one of {OVERFLOW_POLICIES}, "
                f"got {overflow_policy!r}"
            )
        self.capacity = capacity
        self.overflow_policy = overflow_policy
        self._entries: List[BufferedEviction] = []
        self._next_seq = 1
        self._acked = 0
        self.stats = {
            "recorded": 0,
            "acknowledged": 0,
            "rescues": 0,
            "overflows": 0,
            "high_water": 0,
        }
        #: Durability hook (:mod:`repro.state`). ``record`` journals the
        #: parked data too — a replayed buffer must be able to *rescue*,
        #: not just remember that something was parked.
        self.journal: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Remote side
    # ------------------------------------------------------------------

    def record(self, remote_lid: LineId, line_addr: int, data: bytes) -> int:
        """Park a copy of an evicted line; returns its EvictSeq."""
        if (
            len(self._entries) >= self.capacity
            and self.overflow_policy == "strict"
        ):
            raise EvictionBufferOverflowError(
                f"eviction buffer full ({self.capacity} entries) recording "
                f"line {line_addr:#x}"
            )
        seq = self._next_seq
        self._next_seq += 1
        self._entries.append(
            BufferedEviction(seq=seq, remote_lid=remote_lid, line_addr=line_addr, data=data)
        )
        self.stats["recorded"] += 1
        if len(self._entries) > self.capacity:
            # A full buffer would stall evictions in hardware; the model
            # drops the oldest and counts it so tests can detect the
            # condition. Correctness is preserved as long as the drop
            # is older than every in-flight reference.
            self._entries.pop(0)
            self.stats["overflows"] += 1
        self.stats["high_water"] = max(self.stats["high_water"], len(self._entries))
        if self.journal is not None:
            self.journal("evict_record", seq, int(remote_lid), line_addr, data)
        return seq

    @property
    def last_seq(self) -> int:
        """The EvictSeq to embed in the next outgoing request."""
        return self._next_seq - 1

    def acknowledge(self, seq: int) -> None:
        """Home has processed evictions up to *seq*; drop them."""
        if seq <= self._acked:
            return
        self._acked = seq
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.seq > seq]
        self.stats["acknowledged"] += before - len(self._entries)
        if self.journal is not None:
            self.journal("evict_ack", seq)

    # ------------------------------------------------------------------
    # Decompression fallback
    # ------------------------------------------------------------------

    def rescue(self, remote_lid: LineId, line_addr: int) -> Optional[bytes]:
        """Recover an evicted reference by (slot, address), newest first."""
        for entry in reversed(self._entries):
            if entry.remote_lid == remote_lid and entry.line_addr == line_addr:
                self.stats["rescues"] += 1
                return entry.data
        return None

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Durability (snapshot / journal replay, repro.state)
    # ------------------------------------------------------------------

    def apply_record(self, seq: int, remote_lid: LineId, line_addr: int, data: bytes) -> None:
        """Journal replay: re-park an entry with its original EvictSeq.

        Bypasses :meth:`record`'s sequence allocation so the replayed
        buffer reproduces the journaled seqs exactly, and advances
        ``_next_seq`` past them (overflow handling matches ``record``'s
        drop-oldest path — replay never raises).
        """
        self._entries.append(
            BufferedEviction(seq=seq, remote_lid=remote_lid, line_addr=line_addr, data=data)
        )
        self._next_seq = max(self._next_seq, seq + 1)
        if len(self._entries) > self.capacity:
            self._entries.pop(0)

    _SNAP_HEADER = struct.Struct("<HIII")  # capacity, next_seq, acked, entries
    _SNAP_ENTRY = struct.Struct("<IIQH")  # seq, remote lid, line addr, data len

    def snapshot_state(self) -> bytes:
        parts = [
            self._SNAP_HEADER.pack(
                self.capacity, self._next_seq, self._acked, len(self._entries)
            )
        ]
        for entry in self._entries:
            parts.append(
                self._SNAP_ENTRY.pack(
                    entry.seq, int(entry.remote_lid), entry.line_addr, len(entry.data)
                )
            )
            parts.append(entry.data)
        return b"".join(parts)

    def restore_state(self, data: bytes) -> None:
        try:
            self._restore_state(data)
        except (struct.error, ValueError) as exc:
            raise SnapshotCorruptionError(
                f"eviction-buffer snapshot unparseable: {exc}"
            ) from exc

    def _restore_state(self, blob: bytes) -> None:
        capacity, next_seq, acked, count = self._SNAP_HEADER.unpack_from(blob, 0)
        if capacity != self.capacity:
            raise SnapshotCorruptionError(
                f"eviction-buffer snapshot capacity {capacity} does not "
                f"match {self.capacity}"
            )
        offset = self._SNAP_HEADER.size
        entries: List[BufferedEviction] = []
        for _ in range(count):
            seq, lid, addr, length = self._SNAP_ENTRY.unpack_from(blob, offset)
            offset += self._SNAP_ENTRY.size
            payload = blob[offset : offset + length]
            if len(payload) != length:
                raise SnapshotCorruptionError("eviction-buffer snapshot truncated")
            offset += length
            entries.append(
                BufferedEviction(
                    seq=seq, remote_lid=LineId(lid), line_addr=addr, data=payload
                )
            )
        if offset != len(blob):
            raise SnapshotCorruptionError(
                f"{len(blob) - offset} trailing bytes in eviction-buffer snapshot"
            )
        self._entries = entries
        self._next_seq = next_seq
        self._acked = acked

    def reset_state(self) -> None:
        """Wipe to cold state. ``_next_seq`` restarts too — after a
        crash the EvictSeq stream re-synchronizes from the next real
        eviction, and all pre-crash in-flight references that needed
        the lost entries surface as failed rescues (→ RAW), never as
        silent corruption."""
        self._entries = []
        self._next_seq = 1
        self._acked = 0
