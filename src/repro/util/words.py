"""32-bit word views of cache lines.

CABLE operates at 32-bit word granularity throughout: signatures are
hashes of 32-bit words, coverage bit vectors record exact 32-bit word
matches, and the paper's trivial-word rule is defined on 32-bit words.
All helpers here treat cache lines as little-endian sequences of
unsigned 32-bit words.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from repro.util.kernels import line_words, popcount32, trivial_mask

#: Size in bytes of the 32-bit words CABLE samples and compares.
WORD_BYTES = 4

_U32_MASK = 0xFFFFFFFF

__all__ = [
    "WORD_BYTES",
    "bytes_to_words",
    "words_to_bytes",
    "word_at",
    "is_trivial_word",
    "line_zero_fraction",
    "line_words",
    "trivial_mask",
    "popcount32",
]


def bytes_to_words(line: bytes) -> List[int]:
    """Split *line* into little-endian unsigned 32-bit words.

    Returns a fresh mutable list each call; hot paths that only *read*
    the words should use the memoized immutable view
    :func:`repro.util.kernels.line_words` instead.

    Raises :class:`ValueError` if the line length is not a multiple of
    four bytes, since CABLE's structures assume word alignment.
    """
    if len(line) % WORD_BYTES:
        raise ValueError(f"line length {len(line)} is not a multiple of {WORD_BYTES}")
    count = len(line) // WORD_BYTES
    return list(struct.unpack(f"<{count}I", line))


def words_to_bytes(words: Sequence[int]) -> bytes:
    """Inverse of :func:`bytes_to_words`."""
    return struct.pack(f"<{len(words)}I", *(w & _U32_MASK for w in words))


def word_at(line: bytes, offset: int) -> int:
    """Return the little-endian 32-bit word at byte *offset* of *line*."""
    return struct.unpack_from("<I", line, offset)[0]


def is_trivial_word(word: int, threshold_bits: int = 24) -> bool:
    """Apply the paper's trivial-word rule (§III-A).

    A word is *trivial* when it has ``threshold_bits`` or more leading
    zeroes or leading ones — small positive or small negative values,
    which are too common to act as discriminating signatures.
    """
    word &= _U32_MASK
    keep = 32 - threshold_bits
    top = word >> keep
    all_ones_top = (1 << threshold_bits) - 1
    return top == 0 or top == all_ones_top


def line_zero_fraction(line: bytes) -> float:
    """Fraction of 32-bit words in *line* that are exactly zero."""
    words = line_words(line)
    if not words:
        return 0.0
    return sum(1 for w in words if w == 0) / len(words)
