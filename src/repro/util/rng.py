"""Deterministic randomness.

Everything in the reproduction that needs randomness — H3 hash matrices,
synthetic workload generation, multiprogram interleaving — derives from
explicitly seeded generators so that every experiment is exactly
repeatable run-to-run.
"""

from __future__ import annotations

import hashlib
import random


def make_rng(seed, *context) -> random.Random:
    """Return a :class:`random.Random` seeded from *seed* plus context.

    The context values (e.g. a benchmark name, a phase index) are folded
    into the seed so that independent streams never alias even when the
    top-level seed is shared.
    """
    return random.Random(stable_hash64(seed, *context))


def stable_hash64(*parts) -> int:
    """A 64-bit hash of the reprs of *parts*, stable across processes.

    Python's builtin ``hash`` is salted per-process for strings, so it
    cannot be used for reproducible seeding; this uses blake2b instead.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "big")
