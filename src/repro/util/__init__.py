"""Low-level helpers shared across the package."""

from repro.util.kernels import (
    HAVE_NUMPY,
    count_toggles,
    line_match_mask,
    line_words,
    match_mask,
    popcount32,
    trivial_mask,
)
from repro.util.words import (
    WORD_BYTES,
    bytes_to_words,
    words_to_bytes,
    is_trivial_word,
    word_at,
    line_zero_fraction,
)
from repro.util.bits import BitWriter, BitReader, bits_for
from repro.util.rng import make_rng, stable_hash64

__all__ = [
    "WORD_BYTES",
    "bytes_to_words",
    "words_to_bytes",
    "is_trivial_word",
    "word_at",
    "line_zero_fraction",
    "HAVE_NUMPY",
    "count_toggles",
    "line_match_mask",
    "line_words",
    "match_mask",
    "popcount32",
    "trivial_mask",
    "BitWriter",
    "BitReader",
    "bits_for",
    "make_rng",
    "stable_hash64",
]
