"""Vectorized kernels for the per-line encode hot path.

Every ``CableHomeEncoder.encode()`` call decodes the outbound line into
32-bit words, classifies each word as trivial or not, hashes the
non-trivial ones, and popcounts coverage bit vectors. At simulation
scale those four primitives dominate the runtime, so they live here as
*kernels*: one implementation selected **once at import time** from

- a numpy fast path (``numpy`` is a declared dependency, but the
  kernels degrade gracefully when it is absent),
- a CPython fast path (``int.bit_count`` on Python >= 3.10),
- a pure-Python fallback that works on Python 3.9 with no third-party
  packages at all.

Setting the environment variable ``REPRO_PURE_PYTHON=1`` before import
forces the pure-Python fallbacks everywhere — CI uses this to prove the
fast and fallback paths produce identical results.

The other half of the strategy is memoization: cache lines are
immutable ``bytes`` and the same line is decoded, masked and hashed
many times per simulation (encode, index, invalidate, re-encode...).
:func:`line_words` and :func:`trivial_mask` therefore cache their
results keyed on the line contents, bounded by an LRU so pathological
traces cannot grow memory without limit.
"""

from __future__ import annotations

import os
import struct
import sys
from functools import lru_cache
from typing import Iterable, List, Sequence, Tuple

#: Set REPRO_PURE_PYTHON=1 to force every kernel onto its pure-Python
#: fallback (no numpy, no ``int.bit_count``), regardless of what the
#: interpreter supports. Used by CI to exercise the 3.9/no-numpy legs.
FORCE_PURE = os.environ.get("REPRO_PURE_PYTHON", "").strip().lower() in (
    "1",
    "true",
    "yes",
    "on",
)

try:
    if FORCE_PURE:
        raise ImportError("REPRO_PURE_PYTHON forces the pure-Python kernels")
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_PURE_PYTHON
    _np = None

#: True when the numpy fast paths are active.
HAVE_NUMPY = _np is not None

_HAVE_BITWISE_COUNT = HAVE_NUMPY and hasattr(_np, "bitwise_count")

#: Which kernel leg import-time selection landed on. Mirrored into the
#: obs layer so benchmark artifacts record the leg that produced them.
if HAVE_NUMPY:
    BACKEND = "numpy"
elif not FORCE_PURE and hasattr(int, "bit_count"):
    BACKEND = "bit_count"
else:
    BACKEND = "pure"

#: Keyword arguments adding ``__slots__`` to a ``@dataclass`` on
#: interpreters that support it (``slots=True`` arrived in 3.10).
#: Hot per-encode objects use this to cut allocation overhead without
#: dropping 3.9 compatibility.
DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}

#: Bound on the per-line memo caches. 8K 64-byte lines is ~0.5MB of
#: keys — enough to cover a simulated LLC + L4 working set.
_LINE_CACHE_SIZE = 8192

#: Bound on the (line, candidate) pair cache. Pairs are the cross
#: product of the working set with its search candidates, so this must
#: sit well above _LINE_CACHE_SIZE or steady-state searches evict
#: entries before revisiting them. Keys alias existing line objects
#: (no copies), so the cost is pointers + small ints.
_PAIR_CACHE_SIZE = 65536


# ----------------------------------------------------------------------
# popcount — the one popcount every call site shares
# ----------------------------------------------------------------------

def _popcount_pure(value: int) -> int:
    """Portable popcount for non-negative ints (the 3.9 fallback)."""
    return bin(value).count("1")


if not FORCE_PURE and hasattr(int, "bit_count"):
    def popcount32(value: int) -> int:
        """Number of set bits of a non-negative int.

        Named for the 32-bit words/CBVs it counts in the hot path, but
        correct for any width (flit XORs, combined CBVs, masks).
        """
        return value.bit_count()
else:  # Python 3.9 or REPRO_PURE_PYTHON
    popcount32 = _popcount_pure


# ----------------------------------------------------------------------
# Memoized immutable word views
# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def _unpacker(word_count: int):
    return struct.Struct(f"<{word_count}I").unpack


@lru_cache(maxsize=_LINE_CACHE_SIZE)
def line_words(line: bytes) -> Tuple[int, ...]:
    """Immutable little-endian 32-bit word view of *line*, memoized.

    The same cache line is decoded many times per simulation; this
    returns the identical tuple every time without re-unpacking. Use
    :func:`repro.util.words.bytes_to_words` instead when the caller
    needs a private mutable list.
    """
    if len(line) % 4:
        raise ValueError(f"line length {len(line)} is not a multiple of 4")
    return _unpacker(len(line) // 4)(line)


# ----------------------------------------------------------------------
# Trivial-word mask (the paper's §III-A rule, whole-line at once)
# ----------------------------------------------------------------------

def _trivial_mask_pure(line: bytes, threshold_bits: int = 24) -> int:
    mask = 0
    keep = 32 - threshold_bits
    all_ones_top = (1 << threshold_bits) - 1
    for i, word in enumerate(line_words(line)):
        top = word >> keep
        if top == 0 or top == all_ones_top:
            mask |= 1 << i
    return mask


def _trivial_mask_numpy(line: bytes, threshold_bits: int = 24) -> int:
    if not line:
        return 0
    arr = _np.frombuffer(line, dtype="<u4")
    top = arr >> _np.uint32(32 - threshold_bits)
    trivial = (top == 0) | (top == _np.uint32((1 << threshold_bits) - 1))
    return int.from_bytes(
        _np.packbits(trivial, bitorder="little").tobytes(), "little"
    )


#: Below this many bytes the per-array numpy overhead (frombuffer,
#: packbits, int conversion) loses to a plain loop over the cached
#: word tuple. 64-byte cache lines sit firmly on the pure side; the
#: numpy path takes over for page-sized buffers and beyond.
_NUMPY_CUTOVER_BYTES = 256

if HAVE_NUMPY:
    def _trivial_mask_impl(line: bytes, threshold_bits: int = 24) -> int:
        if len(line) >= _NUMPY_CUTOVER_BYTES:
            return _trivial_mask_numpy(line, threshold_bits)
        return _trivial_mask_pure(line, threshold_bits)
else:
    _trivial_mask_impl = _trivial_mask_pure

#: Bit *i* set when word *i* of the line is trivial (>= ``threshold``
#: leading zeros or ones). Memoized per (line, threshold).
trivial_mask = lru_cache(maxsize=_LINE_CACHE_SIZE)(_trivial_mask_impl)


# ----------------------------------------------------------------------
# Coverage bit vectors (word-equality masks)
# ----------------------------------------------------------------------

def match_mask(a: Sequence[int], b: Sequence[int]) -> int:
    """Bit *i* set when ``a[i] == b[i]`` (over the shorter sequence)."""
    mask = 0
    for i, (wa, wb) in enumerate(zip(a, b)):
        if wa == wb:
            mask |= 1 << i
    return mask


def _line_match_mask_pure(line_a: bytes, line_b: bytes) -> int:
    if line_a == line_b:  # exact duplicates are the common candidate
        return (1 << (len(line_a) // 4)) - 1
    return match_mask(line_words(line_a), line_words(line_b))


def _line_match_mask_numpy(line_a: bytes, line_b: bytes) -> int:
    n = min(len(line_a), len(line_b)) & ~3
    if not n:
        return 0
    eq = _np.frombuffer(line_a[:n], dtype="<u4") == _np.frombuffer(
        line_b[:n], dtype="<u4"
    )
    return int.from_bytes(_np.packbits(eq, bitorder="little").tobytes(), "little")


if HAVE_NUMPY:
    def _line_match_mask_impl(line_a: bytes, line_b: bytes) -> int:
        if min(len(line_a), len(line_b)) >= _NUMPY_CUTOVER_BYTES:
            return _line_match_mask_numpy(line_a, line_b)
        return _line_match_mask_pure(line_a, line_b)
else:
    _line_match_mask_impl = _line_match_mask_pure

#: CBV between two raw lines: bit *i* set when their i-th 32-bit words
#: match exactly. The bytes-level fast path of
#: :func:`repro.core.search.coverage_bit_vector`, memoized because a
#: steady-state search re-meets the same (line, candidate) pairs.
line_match_mask = lru_cache(maxsize=_PAIR_CACHE_SIZE)(_line_match_mask_impl)


# ----------------------------------------------------------------------
# Flit toggle counting (link/toggles.py hot loop)
# ----------------------------------------------------------------------

def _count_toggles_pure(flits: Iterable[int], previous: int = 0) -> int:
    toggles = 0
    prev = previous
    for flit in flits:
        toggles += popcount32(prev ^ flit)
        prev = flit
    return toggles


def _count_toggles_numpy(flits: Iterable[int], previous: int = 0) -> int:
    seq: List[int] = list(flits)
    # Short streams (one line is ~33 flits at 16 bits) do not amortize
    # array construction; wide flits would overflow uint64.
    if len(seq) < 8 or (seq and (max(seq) >= 1 << 64 or previous >= 1 << 64)):
        return _count_toggles_pure(seq, previous)
    arr = _np.empty(len(seq) + 1, dtype=_np.uint64)
    arr[0] = previous
    arr[1:] = seq
    return int(_np.bitwise_count(arr[:-1] ^ arr[1:]).sum())


#: Transitions between consecutive flits, starting from *previous*.
count_toggles = (
    _count_toggles_numpy if _HAVE_BITWISE_COUNT else _count_toggles_pure
)


# ----------------------------------------------------------------------
# Batched-across-lines kernels
# ----------------------------------------------------------------------
#
# The per-line kernels above took the arithmetic off the profile; what
# remains in the encode hot path is per-line Python dispatch. These
# primitives amortize it across a *block* of lines: one contiguous
# word matrix, one vectorized trivial-mask pass, one packbits per
# block of coverage bit vectors. Every entry point takes an optional
# ``backend`` ("numpy" or "pure") so tests can pin either leg
# in-process; the default follows the import-time selection (and hence
# REPRO_PURE_PYTHON).


def get_numpy():
    """The numpy module when the fast paths are active, else None.

    Batch call sites (signature hashing, the vectorized search leg)
    route through this instead of importing numpy themselves so the
    REPRO_PURE_PYTHON gate stays in exactly one place.
    """
    return _np


def batch_backend(override: "str | None" = None) -> str:
    """Resolve the batch-kernel leg: "numpy" or "pure"."""
    if override is not None:
        if override not in ("numpy", "pure"):
            raise ValueError(f"unknown batch backend {override!r}")
        if override == "numpy" and not HAVE_NUMPY:
            raise ValueError("numpy batch backend requested but numpy is unavailable")
        return override
    return "numpy" if HAVE_NUMPY else "pure"


def _rows_to_masks(rows: "object") -> List[int]:
    """Per-row little-endian bitmask ints from a (N, W) bool array."""
    packed = _np.packbits(rows, axis=1, bitorder="little")
    width = packed.shape[1]
    pad = -width % 8
    if pad:
        packed = _np.pad(packed, ((0, 0), (0, pad)))
    if packed.shape[1] == 8:
        return _np.ascontiguousarray(packed).view("<u8").ravel().tolist()
    data = packed.tobytes()
    stride = packed.shape[1]
    return [
        int.from_bytes(data[i : i + stride], "little")
        for i in range(0, len(data), stride)
    ]


class BatchLines:
    """A block of equal-length lines as one contiguous word matrix.

    Built in a single vectorized pass on the numpy leg: one
    ``frombuffer`` over the concatenated lines for the ``(count,
    words_per_line)`` uint32 matrix, and one shift/compare/packbits
    round for the per-line trivial masks. The pure leg reuses the
    memoized per-line kernels, so both legs agree bit-for-bit with
    :func:`line_words` / :func:`trivial_mask`.
    """

    __slots__ = ("lines", "count", "words_per_line", "backend", "words", "tmasks")

    def __init__(
        self,
        lines: Sequence[bytes],
        trivial_threshold_bits: int = 24,
        backend: "str | None" = None,
    ) -> None:
        self.lines: Tuple[bytes, ...] = tuple(lines)
        self.count = len(self.lines)
        if not self.count:
            raise ValueError("BatchLines needs at least one line")
        size = len(self.lines[0])
        if size % 4 or any(len(line) != size for line in self.lines):
            raise ValueError("BatchLines needs equal, word-aligned line lengths")
        self.words_per_line = size // 4
        self.backend = batch_backend(backend)
        if self.backend == "numpy":
            matrix = _np.frombuffer(b"".join(self.lines), dtype="<u4").reshape(
                self.count, self.words_per_line
            )
            top = matrix >> _np.uint32(32 - trivial_threshold_bits)
            trivial = (top == 0) | (
                top == _np.uint32((1 << trivial_threshold_bits) - 1)
            )
            #: (count, words_per_line) uint32 matrix, row *i* = line *i*.
            self.words = matrix
            #: Per-line trivial masks (same rule as :func:`trivial_mask`).
            self.tmasks: List[int] = _rows_to_masks(trivial)
        else:
            self.words = [line_words(line) for line in self.lines]
            self.tmasks = [
                trivial_mask(line, trivial_threshold_bits) for line in self.lines
            ]


def popcount_array(arr: "object") -> "object":
    """Elementwise popcount of a uint32 numpy array (numpy leg only)."""
    if _HAVE_BITWISE_COUNT:
        return _np.bitwise_count(arr)
    v = arr.astype(_np.uint32, copy=True)
    v -= (v >> 1) & _np.uint32(0x55555555)
    v = (v & _np.uint32(0x33333333)) + ((v >> 2) & _np.uint32(0x33333333))
    v = (v + (v >> 4)) & _np.uint32(0x0F0F0F0F)
    return (v * _np.uint32(0x01010101)) >> 24


def batch_match_masks(
    line: bytes, candidates: Sequence[bytes], backend: "str | None" = None
) -> List[int]:
    """CBVs of *line* against many candidate lines at once.

    Equivalent to ``[line_match_mask(line, c) for c in candidates]``;
    the numpy leg stacks the candidates and resolves every mask with
    one compare + packbits round.
    """
    if not candidates:
        return []
    if batch_backend(backend) != "numpy" or any(
        len(c) != len(line) for c in candidates
    ):
        return [line_match_mask(line, candidate) for candidate in candidates]
    target = _np.frombuffer(line, dtype="<u4")
    stacked = _np.frombuffer(b"".join(candidates), dtype="<u4").reshape(
        len(candidates), len(line) // 4
    )
    return _rows_to_masks(stacked == target)


def match_mask_rows(target_rows: "object", candidate_rows: "object") -> List[int]:
    """Row-wise CBVs between two aligned (N, W) uint32 matrices.

    The fully-batched CBV kernel: the search pipeline gathers one
    target row and one candidate row per (line, candidate) pair and
    resolves the whole block in a single compare + packbits round.
    """
    if not len(target_rows):
        return []
    return _rows_to_masks(target_rows == candidate_rows)


def clear_caches() -> None:
    """Drop the per-line memo caches (tests and benchmarks only)."""
    line_words.cache_clear()
    trivial_mask.cache_clear()
    line_match_mask.cache_clear()
