"""Vectorized kernels for the per-line encode hot path.

Every ``CableHomeEncoder.encode()`` call decodes the outbound line into
32-bit words, classifies each word as trivial or not, hashes the
non-trivial ones, and popcounts coverage bit vectors. At simulation
scale those four primitives dominate the runtime, so they live here as
*kernels*: one implementation selected **once at import time** from

- a numpy fast path (``numpy`` is a declared dependency, but the
  kernels degrade gracefully when it is absent),
- a CPython fast path (``int.bit_count`` on Python >= 3.10),
- a pure-Python fallback that works on Python 3.9 with no third-party
  packages at all.

Setting the environment variable ``REPRO_PURE_PYTHON=1`` before import
forces the pure-Python fallbacks everywhere — CI uses this to prove the
fast and fallback paths produce identical results.

The other half of the strategy is memoization: cache lines are
immutable ``bytes`` and the same line is decoded, masked and hashed
many times per simulation (encode, index, invalidate, re-encode...).
:func:`line_words` and :func:`trivial_mask` therefore cache their
results keyed on the line contents, bounded by an LRU so pathological
traces cannot grow memory without limit.
"""

from __future__ import annotations

import os
import struct
import sys
from functools import lru_cache
from typing import Iterable, List, Sequence, Tuple

#: Set REPRO_PURE_PYTHON=1 to force every kernel onto its pure-Python
#: fallback (no numpy, no ``int.bit_count``), regardless of what the
#: interpreter supports. Used by CI to exercise the 3.9/no-numpy legs.
FORCE_PURE = os.environ.get("REPRO_PURE_PYTHON", "").strip().lower() in (
    "1",
    "true",
    "yes",
    "on",
)

try:
    if FORCE_PURE:
        raise ImportError("REPRO_PURE_PYTHON forces the pure-Python kernels")
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_PURE_PYTHON
    _np = None

#: True when the numpy fast paths are active.
HAVE_NUMPY = _np is not None

_HAVE_BITWISE_COUNT = HAVE_NUMPY and hasattr(_np, "bitwise_count")

#: Keyword arguments adding ``__slots__`` to a ``@dataclass`` on
#: interpreters that support it (``slots=True`` arrived in 3.10).
#: Hot per-encode objects use this to cut allocation overhead without
#: dropping 3.9 compatibility.
DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}

#: Bound on the per-line memo caches. 8K 64-byte lines is ~0.5MB of
#: keys — enough to cover a simulated LLC + L4 working set.
_LINE_CACHE_SIZE = 8192

#: Bound on the (line, candidate) pair cache. Pairs are the cross
#: product of the working set with its search candidates, so this must
#: sit well above _LINE_CACHE_SIZE or steady-state searches evict
#: entries before revisiting them. Keys alias existing line objects
#: (no copies), so the cost is pointers + small ints.
_PAIR_CACHE_SIZE = 65536


# ----------------------------------------------------------------------
# popcount — the one popcount every call site shares
# ----------------------------------------------------------------------

def _popcount_pure(value: int) -> int:
    """Portable popcount for non-negative ints (the 3.9 fallback)."""
    return bin(value).count("1")


if not FORCE_PURE and hasattr(int, "bit_count"):
    def popcount32(value: int) -> int:
        """Number of set bits of a non-negative int.

        Named for the 32-bit words/CBVs it counts in the hot path, but
        correct for any width (flit XORs, combined CBVs, masks).
        """
        return value.bit_count()
else:  # Python 3.9 or REPRO_PURE_PYTHON
    popcount32 = _popcount_pure


# ----------------------------------------------------------------------
# Memoized immutable word views
# ----------------------------------------------------------------------

@lru_cache(maxsize=None)
def _unpacker(word_count: int):
    return struct.Struct(f"<{word_count}I").unpack


@lru_cache(maxsize=_LINE_CACHE_SIZE)
def line_words(line: bytes) -> Tuple[int, ...]:
    """Immutable little-endian 32-bit word view of *line*, memoized.

    The same cache line is decoded many times per simulation; this
    returns the identical tuple every time without re-unpacking. Use
    :func:`repro.util.words.bytes_to_words` instead when the caller
    needs a private mutable list.
    """
    if len(line) % 4:
        raise ValueError(f"line length {len(line)} is not a multiple of 4")
    return _unpacker(len(line) // 4)(line)


# ----------------------------------------------------------------------
# Trivial-word mask (the paper's §III-A rule, whole-line at once)
# ----------------------------------------------------------------------

def _trivial_mask_pure(line: bytes, threshold_bits: int = 24) -> int:
    mask = 0
    keep = 32 - threshold_bits
    all_ones_top = (1 << threshold_bits) - 1
    for i, word in enumerate(line_words(line)):
        top = word >> keep
        if top == 0 or top == all_ones_top:
            mask |= 1 << i
    return mask


def _trivial_mask_numpy(line: bytes, threshold_bits: int = 24) -> int:
    if not line:
        return 0
    arr = _np.frombuffer(line, dtype="<u4")
    top = arr >> _np.uint32(32 - threshold_bits)
    trivial = (top == 0) | (top == _np.uint32((1 << threshold_bits) - 1))
    return int.from_bytes(
        _np.packbits(trivial, bitorder="little").tobytes(), "little"
    )


#: Below this many bytes the per-array numpy overhead (frombuffer,
#: packbits, int conversion) loses to a plain loop over the cached
#: word tuple. 64-byte cache lines sit firmly on the pure side; the
#: numpy path takes over for page-sized buffers and beyond.
_NUMPY_CUTOVER_BYTES = 256

if HAVE_NUMPY:
    def _trivial_mask_impl(line: bytes, threshold_bits: int = 24) -> int:
        if len(line) >= _NUMPY_CUTOVER_BYTES:
            return _trivial_mask_numpy(line, threshold_bits)
        return _trivial_mask_pure(line, threshold_bits)
else:
    _trivial_mask_impl = _trivial_mask_pure

#: Bit *i* set when word *i* of the line is trivial (>= ``threshold``
#: leading zeros or ones). Memoized per (line, threshold).
trivial_mask = lru_cache(maxsize=_LINE_CACHE_SIZE)(_trivial_mask_impl)


# ----------------------------------------------------------------------
# Coverage bit vectors (word-equality masks)
# ----------------------------------------------------------------------

def match_mask(a: Sequence[int], b: Sequence[int]) -> int:
    """Bit *i* set when ``a[i] == b[i]`` (over the shorter sequence)."""
    mask = 0
    for i, (wa, wb) in enumerate(zip(a, b)):
        if wa == wb:
            mask |= 1 << i
    return mask


def _line_match_mask_pure(line_a: bytes, line_b: bytes) -> int:
    if line_a == line_b:  # exact duplicates are the common candidate
        return (1 << (len(line_a) // 4)) - 1
    return match_mask(line_words(line_a), line_words(line_b))


def _line_match_mask_numpy(line_a: bytes, line_b: bytes) -> int:
    n = min(len(line_a), len(line_b)) & ~3
    if not n:
        return 0
    eq = _np.frombuffer(line_a[:n], dtype="<u4") == _np.frombuffer(
        line_b[:n], dtype="<u4"
    )
    return int.from_bytes(_np.packbits(eq, bitorder="little").tobytes(), "little")


if HAVE_NUMPY:
    def _line_match_mask_impl(line_a: bytes, line_b: bytes) -> int:
        if min(len(line_a), len(line_b)) >= _NUMPY_CUTOVER_BYTES:
            return _line_match_mask_numpy(line_a, line_b)
        return _line_match_mask_pure(line_a, line_b)
else:
    _line_match_mask_impl = _line_match_mask_pure

#: CBV between two raw lines: bit *i* set when their i-th 32-bit words
#: match exactly. The bytes-level fast path of
#: :func:`repro.core.search.coverage_bit_vector`, memoized because a
#: steady-state search re-meets the same (line, candidate) pairs.
line_match_mask = lru_cache(maxsize=_PAIR_CACHE_SIZE)(_line_match_mask_impl)


# ----------------------------------------------------------------------
# Flit toggle counting (link/toggles.py hot loop)
# ----------------------------------------------------------------------

def _count_toggles_pure(flits: Iterable[int], previous: int = 0) -> int:
    toggles = 0
    prev = previous
    for flit in flits:
        toggles += popcount32(prev ^ flit)
        prev = flit
    return toggles


def _count_toggles_numpy(flits: Iterable[int], previous: int = 0) -> int:
    seq: List[int] = list(flits)
    # Short streams (one line is ~33 flits at 16 bits) do not amortize
    # array construction; wide flits would overflow uint64.
    if len(seq) < 8 or (seq and (max(seq) >= 1 << 64 or previous >= 1 << 64)):
        return _count_toggles_pure(seq, previous)
    arr = _np.empty(len(seq) + 1, dtype=_np.uint64)
    arr[0] = previous
    arr[1:] = seq
    return int(_np.bitwise_count(arr[:-1] ^ arr[1:]).sum())


#: Transitions between consecutive flits, starting from *previous*.
count_toggles = (
    _count_toggles_numpy if _HAVE_BITWISE_COUNT else _count_toggles_pure
)


def clear_caches() -> None:
    """Drop the per-line memo caches (tests and benchmarks only)."""
    line_words.cache_clear()
    trivial_mask.cache_clear()
    line_match_mask.cache_clear()
