"""Bit-granularity serialization.

Compression payloads in the paper are measured in bits (a 1-bit
compressed flag, a 2-bit reference count, 17-bit RemoteLIDs, CPACK
codes of 2–34 bits...). :class:`BitWriter` and :class:`BitReader`
provide exact MSB-first bit streams so every engine in
:mod:`repro.compression` can both *account* bits and *round-trip*
real encodings in tests.
"""

from __future__ import annotations


def bits_for(value_count: int) -> int:
    """Number of bits needed to index ``value_count`` distinct values.

    ``bits_for(1) == 0`` — a single possible value needs no bits.
    """
    if value_count < 1:
        raise ValueError("value_count must be positive")
    return (value_count - 1).bit_length()


class BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self) -> None:
        self._chunks: list = []  # (value, width) pairs
        self._bit_count = 0

    def write(self, value: int, width: int) -> None:
        """Append the *width* low bits of *value*."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if width == 0:
            return
        if value < 0 or value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._chunks.append((value, width))
        self._bit_count += width

    def write_bytes(self, data: bytes) -> None:
        for byte in data:
            self.write(byte, 8)

    def extend(self, other: "BitWriter") -> None:
        """Append every bit another writer holds (frame composition)."""
        self._chunks.extend(other._chunks)
        self._bit_count += other._bit_count

    @property
    def bit_count(self) -> int:
        return self._bit_count

    def getvalue(self) -> bytes:
        """Pack the stream into bytes, zero-padded to a byte boundary."""
        acc = 0
        for value, width in self._chunks:
            acc = (acc << width) | value
        pad = (-self._bit_count) % 8
        acc <<= pad
        total_bytes = (self._bit_count + pad) // 8
        return acc.to_bytes(total_bytes, "big") if total_bytes else b""


class BitReader:
    """MSB-first reader over bytes produced by :class:`BitWriter`."""

    def __init__(self, data: bytes, bit_count: int = None) -> None:
        self._data = data
        self._pos = 0
        self._limit = len(data) * 8 if bit_count is None else bit_count
        if self._limit > len(data) * 8:
            raise ValueError("bit_count exceeds available data")

    def read(self, width: int) -> int:
        if width < 0:
            raise ValueError("width must be non-negative")
        if width == 0:
            return 0
        if self._pos + width > self._limit:
            raise EOFError("bit stream exhausted")
        value = 0
        pos = self._pos
        for _ in range(width):
            byte = self._data[pos >> 3]
            bit = (byte >> (7 - (pos & 7))) & 1
            value = (value << 1) | bit
            pos += 1
        self._pos = pos
        return value

    def read_bytes(self, count: int) -> bytes:
        return bytes(self.read(8) for _ in range(count))

    def seek(self, bit_position: int) -> None:
        """Jump to an absolute bit position (frame field access)."""
        if not 0 <= bit_position <= self._limit:
            raise ValueError("seek position outside the bit stream")
        self._pos = bit_position

    @property
    def bits_remaining(self) -> int:
        return self._limit - self._pos
