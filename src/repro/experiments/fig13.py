"""Fig 13 — compression ratio on the coherence links of a 4-chip CMP.

Single-threaded benchmarks with pages interleaved round-robin across
four NUMA nodes; every scheme compresses the three point-to-point
links out of node 0. The paper's observations reproduced here: trends
match the memory link but ratios dip slightly because coherence
traffic carries more dirty lines; CABLE+LBE ≈ 10.6× on average,
~86% over CPACK.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, percent_better
from repro.experiments.base import (
    ExperimentResult,
    FIGURE_SCHEMES,
    resolve_scale,
)
from repro.sim.multichip import MultiChipConfig, run_multichip
from repro.trace.profiles import ZERO_DOMINANT

EXPERIMENT_ID = "Fig 13"

_DEFAULT_BENCHMARKS = (
    "dealII", "gcc", "gobmk", "omnetpp", "perlbench", "tonto",
    "mcf", "lbm",
)


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    preset = resolve_scale(scale)
    benchmarks = list(benchmarks or _DEFAULT_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Coherence-link compression, 4-chip CMP",
        headers=["benchmark"] + list(FIGURE_SCHEMES),
        paper_claim=(
            "Same trends as the memory link, slightly lower due to dirty "
            "transfers; CABLE+LBE ~86% better than CPACK on average"
        ),
    )
    config = MultiChipConfig(
        accesses=preset.accesses,
        llc_bytes=preset.llc_bytes * 4,  # per-node LLC; share/link = llc/4
        ws_scale=preset.ws_scale,
        warmup_fraction=preset.warmup_fraction,
    )
    cable_vals = []
    cpack_vals = []
    for benchmark in benchmarks:
        row = [benchmark + ("*" if benchmark in ZERO_DOMINANT else "")]
        for scheme in FIGURE_SCHEMES:
            r = run_multichip(benchmark, config.scaled(scheme=scheme))
            row.append(r.effective_ratio)
            if scheme == "cable":
                cable_vals.append(r.effective_ratio)
            elif scheme == "cpack":
                cpack_vals.append(r.effective_ratio)
        result.rows.append(row)
    result.summary = {
        "cable_mean": arithmetic_mean(cable_vals),
        "cpack_mean": arithmetic_mean(cpack_vals),
        "cable_pct_better": percent_better(
            arithmetic_mean(cable_vals), arithmetic_mean(cpack_vals)
        ),
    }
    return result


if __name__ == "__main__":
    print(run().render())
