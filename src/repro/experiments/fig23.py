"""Fig 23 — compression at other link widths.

Effective bandwidth degrades on wider links because compressed
payloads waste more of their final flit. A packed transport (6-bit
length prefixes, transfers concatenated bit-contiguously) recovers
the loss — the paper's "64-bit Packed" series.

Reuses the per-transfer payload sizes of the baseline runs and
re-quantizes them for each width, exactly how the physical layer
differs and nothing else.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import geometric_mean
from repro.experiments.base import (
    ExperimentResult,
    SWEEP_BENCHMARKS,
    cached_memlink,
)
from repro.link.channel import LinkModel, PackedTransport

EXPERIMENT_ID = "Fig 23"

LINK_WIDTHS = (8, 16, 32, 64)


def requantize(per_transfer_bits: Sequence[int], width: int, packed: bool) -> float:
    """Effective ratio of a recorded payload stream at another width."""
    link = LinkModel(width_bits=width)
    raw_flits = link.flits_for(64 * 8) * len(per_transfer_bits)
    if packed:
        transport = PackedTransport(link)
        for bits in per_transfer_bits:
            transport.record(bits)
        flits = max(transport.flits, 1)
    else:
        flits = sum(link.flits_for(bits) for bits in per_transfer_bits) or 1
    return raw_flits / flits


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or SWEEP_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="CABLE effective compression at other link widths",
        headers=["width"] + ["cable_geomean"],
        paper_claim=(
            "Effective ratio degrades with width; 64-bit packed transport "
            "recovers it"
        ),
    )
    streams = {
        b: cached_memlink(b, "cable", scale).per_transfer_bits for b in benchmarks
    }
    for width in LINK_WIDTHS:
        vals = [requantize(streams[b], width, packed=False) for b in benchmarks]
        result.rows.append([f"{width}-bit", geometric_mean(vals)])
    packed_vals = [requantize(streams[b], 64, packed=True) for b in benchmarks]
    result.rows.append(["64-bit packed", geometric_mean(packed_vals)])
    result.summary = {
        "ratio_16b": result.rows[1][1],
        "ratio_64b": result.rows[3][1],
        "ratio_64b_packed": result.rows[4][1],
    }
    return result


if __name__ == "__main__":
    print(run().render())
