"""Fig 18 — normalized memory-subsystem energy breakdown.

For each benchmark: the uncompressed baseline (left bar) vs CABLE+LBE
(right bar), broken into SRAM, LINK, DRAM, compression engine and
compression SRAM, all normalized to the baseline total. Link energy is
~20% of the subsystem for memory-bound workloads and compresses ~7×,
while codec energy stays tiny — netting ~15-16% average savings.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.base import ExperimentResult, cached_memlink
from repro.sim.energy import EnergyModel
from repro.trace.profiles import ALL_BENCHMARKS

EXPERIMENT_ID = "Fig 18"


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or ALL_BENCHMARKS)
    model = EnergyModel()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Normalized memory-subsystem energy (baseline vs CABLE+LBE)",
        headers=[
            "benchmark",
            "base_sram",
            "base_link",
            "base_dram",
            "cable_sram",
            "cable_link",
            "cable_dram",
            "cable_engine",
            "cable_comp_sram",
            "saving_pct",
        ],
        paper_claim="~15-16% average memory-subsystem energy saving",
    )
    savings = []
    for benchmark in benchmarks:
        sim = cached_memlink(benchmark, "cable", scale)
        base = model.breakdown(sim, compressed=False)
        comp = model.breakdown(sim, compressed=True)
        base_norm = base.normalized_to(base)
        comp_norm = comp.normalized_to(base)
        saving = 100.0 * model.saving(sim)
        savings.append(saving)
        result.rows.append(
            [
                benchmark,
                base_norm["sram"],
                base_norm["link"],
                base_norm["dram"],
                comp_norm["sram"],
                comp_norm["link"],
                comp_norm["dram"],
                comp_norm["engine"],
                comp_norm["comp_sram"],
                saving,
            ]
        )
    result.summary = {
        "mean_saving_pct": arithmetic_mean(savings),
        "max_saving_pct": max(savings),
        "min_saving_pct": min(savings),
    }
    return result


if __name__ == "__main__":
    print(run().render())
