"""Resilience sweep — fault injection vs. link recovery.

Not a figure from the paper: CABLE's evaluation assumes a reliable
link, and §IV-A only closes the in-flight-eviction race. This sweep
asks the robustness question a deployment would: with the wire, the
transport and the metadata all failing at rate *r*, what does recovery
cost, and is corruption ever silent?

Per fault rate (every injector category armed at the same rate), each
benchmark runs the full memory-link simulation with the lossy-link
protocol (CRC-guarded frames, NACK/retransmit, raw fallback, circuit
breaker). Reported per rate:

- recovery activity: NACKs, retransmissions, raw fallbacks;
- breaker trips *and* re-arms (the sweep's policy uses a tighter
  threshold and a short cooldown so the highest rate demonstrably
  cycles the breaker through open → raw → re-armed);
- the bandwidth cost: effective compression ratio including framing
  and retransmission overhead, vs. the fault-free ratio;
- silent corruptions, which must be zero at every rate — every
  delivered line is byte-compared against what was sent.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import geometric_mean
from repro.experiments.base import ExperimentResult, cached_memlink
from repro.fault.plan import FaultPlan, RecoveryPolicy

EXPERIMENT_ID = "Resilience"

#: Per-category fault rates swept (x-axis). 0.0 is the control: the
#: recovery layer runs (framing costs are charged) but nothing fails.
FAULT_RATES = (0.0, 0.005, 0.02, 0.1)

#: Sweep policy: tighter breaker than the defaults so the top rate
#: demonstrably trips it, and a short cooldown so it also re-arms
#: within a default-scale run.
SWEEP_POLICY = RecoveryPolicy(
    breaker_threshold=0.25,
    breaker_window=24,
    breaker_min_samples=12,
    breaker_cooldown=24,
)

#: Two benchmarks with healthy reference coverage keep the sweep's
#: runtime sane while exercising both transfer directions.
DEFAULT_BENCHMARKS = ("gcc", "omnetpp")


def run(
    scale="default", benchmarks: Optional[Sequence[str]] = None
) -> ExperimentResult:
    benchmarks = tuple(benchmarks or DEFAULT_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Fault injection vs. link recovery",
        headers=[
            "fault_rate",
            "transfers",
            "faults",
            "nacks",
            "retries",
            "raw_fallbacks",
            "breaker_trips",
            "breaker_rearms",
            "silent_corruptions",
            "eff_ratio",
            "overhead_pct",
        ],
        paper_claim=(
            "Beyond the paper: corruption is never silent — every fault "
            "is absorbed (NACK/retransmit/raw) or surfaces as a typed "
            "error; the breaker degrades to raw past the threshold and "
            "re-arms after cooldown"
        ),
    )
    totals = {"faults": 0, "silent": 0}
    trips_at_max = rearms_at_max = 0
    for i, rate in enumerate(FAULT_RATES):
        plan = FaultPlan.uniform(rate, seed=0xFA017 + i)
        counters = {
            key: 0
            for key in (
                "transfers",
                "faults_injected",
                "nacks",
                "retries",
                "raw_fallbacks",
                "breaker_trips",
                "breaker_recoveries",
                "silent_corruptions",
            )
        }
        ratios = []
        overhead_pcts = []
        for benchmark in benchmarks:
            sim = cached_memlink(
                benchmark,
                "cable",
                scale,
                faults=plan,
                recovery=SWEEP_POLICY,
            )
            for key in counters:
                counters[key] += sim.health.get(key, 0)
            ratios.append(sim.effective_ratio)
            if sim.payload_bits:
                overhead_pcts.append(100.0 * sim.overhead_bits / sim.payload_bits)
        result.rows.append(
            [
                f"{rate:g}",
                counters["transfers"],
                counters["faults_injected"],
                counters["nacks"],
                counters["retries"],
                counters["raw_fallbacks"],
                counters["breaker_trips"],
                counters["breaker_recoveries"],
                counters["silent_corruptions"],
                geometric_mean(ratios),
                sum(overhead_pcts) / len(overhead_pcts),
            ]
        )
        totals["faults"] += counters["faults_injected"]
        totals["silent"] += counters["silent_corruptions"]
        if rate == max(FAULT_RATES):
            trips_at_max = counters["breaker_trips"]
            rearms_at_max = counters["breaker_recoveries"]
    result.summary = {
        "total_faults": totals["faults"],
        "silent_corruptions": totals["silent"],
        "breaker_trips_at_max_rate": trips_at_max,
        "breaker_rearms_at_max_rate": rearms_at_max,
    }
    return result


if __name__ == "__main__":
    print(run().render())
