"""Fig 17 — single-thread performance degradation from codec latency.

With one thread and abundant bandwidth, compression only *adds*
latency on the critical path of every off-chip fill. The overhead is
proportional to comp+decomp latency (Table IV): CPACK 8/8 barely
registers, gzip 64/32 hurts most, CABLE 32/16 (48 cycles worst case)
sits at ~5% average, ~10% worst — the price §VI-D's on/off control
eliminates.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.base import ExperimentResult, cached_memlink
from repro.sim.timing import TimingModel
from repro.trace.profiles import ALL_BENCHMARKS

EXPERIMENT_ID = "Fig 17"

_SCHEMES = ("cpack", "gzip", "cable")


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or ALL_BENCHMARKS)
    timing = TimingModel()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Single-thread performance degradation (%)",
        headers=["benchmark"] + list(_SCHEMES),
        paper_claim=(
            "Overhead proportional to codec latency; CABLE ~5% average, "
            "~10% worst"
        ),
    )
    per_scheme: Dict[str, list] = {s: [] for s in _SCHEMES}
    for benchmark in benchmarks:
        row = [benchmark]
        for scheme in _SCHEMES:
            sim = cached_memlink(benchmark, scheme, scale)
            degradation = 100.0 * timing.degradation(sim)
            per_scheme[scheme].append(degradation)
            row.append(degradation)
        result.rows.append(row)
    result.summary = {
        f"{s}_mean_pct": arithmetic_mean(per_scheme[s]) for s in _SCHEMES
    }
    result.summary["cable_max_pct"] = max(per_scheme["cable"])
    return result


if __name__ == "__main__":
    print(run().render())
