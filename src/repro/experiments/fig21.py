"""Fig 21 — hash-table size sensitivity.

The table scales from 2× "full-sized" down to 1/2048×. Degradation is
graceful: smaller tables simply retain the most recent signatures
(FIFO buckets), so even extreme downsizing keeps most of the ratio,
and ~1/8× is the paper's sweet spot (<7% loss at worst).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import geometric_mean
from repro.core.config import CableConfig
from repro.experiments.base import (
    ExperimentResult,
    SWEEP_BENCHMARKS,
    cached_memlink,
)

EXPERIMENT_ID = "Fig 21"

#: Scales relative to full-sized; 2x is the paper's baseline here.
SCALES = (2.0, 1.0, 0.5, 0.125, 1 / 64, 1 / 2048)


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or SWEEP_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Compression vs hash-table size (relative to 2x table)",
        headers=["benchmark"] + [_label(s) for s in SCALES],
        paper_claim=(
            "Graceful degradation down to 1/2048x; 1/8x loses <7% worst-case"
        ),
    )
    per_scale: Dict[float, List[float]] = {s: [] for s in SCALES}
    for benchmark in benchmarks:
        row: List = [benchmark]
        baseline = None
        for table_scale in SCALES:
            sim = cached_memlink(
                benchmark,
                "cable",
                scale,
                cable=CableConfig(hash_table_scale=table_scale),
            )
            if baseline is None:
                baseline = sim.effective_ratio
            relative = sim.effective_ratio / baseline
            per_scale[table_scale].append(relative)
            row.append(relative)
        result.rows.append(row)
    result.summary = {
        _label(s): geometric_mean(per_scale[s]) for s in SCALES
    }
    return result


def _label(table_scale: float) -> str:
    if table_scale >= 1:
        return f"{table_scale:g}x"
    return f"1/{round(1 / table_scale)}x"


if __name__ == "__main__":
    print(run().render())
