"""Fig 14 — throughput speedups from link compression.

(a) per-benchmark speedup at 2048 threads: memory-intensive workloads
(mcf, lbm) gain the most — up to ~30× at the link's 32× cap — while
compute-intensive ones (povray, gobmk) barely move despite high
compression ratios.

(b) mean speedup vs thread count: at 256 threads the link is not
oversubscribed and compression barely helps; the gain grows with
thread count.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, geometric_mean
from repro.experiments.base import ExperimentResult, cached_memlink
from repro.sim.throughput import ThroughputModel
from repro.trace.profiles import ALL_BENCHMARKS

EXPERIMENT_ID = "Fig 14"

THREAD_COUNTS = (256, 512, 1024, 2048)
_COMPARED = ("cpack", "gzip", "cable")


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or ALL_BENCHMARKS)
    model = ThroughputModel()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Throughput speedups with link compression",
        headers=["benchmark"]
        + [f"{s}@2048" for s in _COMPARED],
        paper_claim=(
            "CABLE: 378% average increase (4.78x) at 2048 threads, up to "
            "~30x for memory-bound workloads, ~1x for compute-bound; gain "
            "grows with thread count (Fig 14b)"
        ),
    )
    speedups: Dict[str, Dict[str, Dict[int, float]]] = {}
    for benchmark in benchmarks:
        raw = cached_memlink(benchmark, "raw", scale)
        speedups[benchmark] = {}
        row = [benchmark]
        for scheme in _COMPARED:
            comp = cached_memlink(benchmark, scheme, scale)
            curve = model.speedup_curve(comp, raw, THREAD_COUNTS)
            speedups[benchmark][scheme] = curve
            row.append(curve[2048])
        result.rows.append(row)

    # Fig 14b rows: mean speedup per thread count.
    for threads in THREAD_COUNTS:
        row = [f"mean@{threads}"]
        for scheme in _COMPARED:
            row.append(
                geometric_mean(
                    speedups[b][scheme][threads] for b in benchmarks
                )
            )
        result.rows.append(row)

    cable_2048 = [speedups[b]["cable"][2048] for b in benchmarks]
    result.summary = {
        "cable_mean_speedup_2048": arithmetic_mean(cable_2048),
        "cable_geomean_speedup_2048": geometric_mean(cable_2048),
        "cable_max_speedup_2048": max(cable_2048),
        "cable_mean_speedup_256": arithmetic_mean(
            speedups[b]["cable"][256] for b in benchmarks
        ),
    }
    return result


if __name__ == "__main__":
    print(run().render())
