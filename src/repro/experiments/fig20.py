"""Fig 20 — CABLE paired with different compression engines.

The framework finds the references; the engine makes the DIFF. With
the *same* references, LBE > gzip > CPACK128 (pointer overhead per
word hurts CPACK; LBE copies aligned blocks cheaply), and ORACLE —
an exact-minimum byte-granularity diff — shows the remaining headroom
(byte shifts, unaligned duplicates).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import geometric_mean
from repro.experiments.base import (
    ExperimentResult,
    SWEEP_BENCHMARKS,
    cached_memlink,
)

EXPERIMENT_ID = "Fig 20"

ENGINES = ("cpack128", "gzip", "lbe", "oracle")


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or SWEEP_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="CABLE compression with different engines",
        headers=["benchmark"] + [f"cable+{e}" for e in ENGINES],
        paper_claim="LBE best practical engine; ORACLE strictly better (headroom)",
    )
    per_engine: Dict[str, List[float]] = {e: [] for e in ENGINES}
    for benchmark in benchmarks:
        row: List = [benchmark]
        for engine in ENGINES:
            sim = cached_memlink(
                benchmark, "cable", scale, cable=_cable_config(engine)
            )
            per_engine[engine].append(sim.effective_ratio)
            row.append(sim.effective_ratio)
        result.rows.append(row)
    result.summary = {
        f"{e}_geomean": geometric_mean(per_engine[e]) for e in ENGINES
    }
    return result


def _cable_config(engine: str):
    from repro.core.config import CableConfig

    return CableConfig(engine=engine)


if __name__ == "__main__":
    print(run().render())
