"""§VI-D (text) — on/off compression control.

A 1ms-sampled hysteresis controller (off below 80% link utilization,
on above 90%) nullifies the single-thread latency penalty while
giving up ~2.3% throughput at high thread counts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.base import ExperimentResult, cached_memlink
from repro.sim.control import evaluate_control
from repro.trace.profiles import ALL_BENCHMARKS

EXPERIMENT_ID = "Control (§VI-D)"


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or ALL_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="On/off compression control",
        headers=[
            "benchmark",
            "degr_always_pct",
            "degr_controlled_pct",
            "throughput_retained_pct",
        ],
        paper_claim=(
            "Single-thread degradation nullified; ~2.3% average "
            "throughput cost"
        ),
    )
    controlled: List[float] = []
    retained: List[float] = []
    for benchmark in benchmarks:
        sim = cached_memlink(benchmark, "cable", scale)
        outcome = evaluate_control(sim)
        controlled.append(100.0 * outcome.degradation_controlled)
        retained.append(100.0 * outcome.throughput_retained)
        result.rows.append(
            [
                benchmark,
                100.0 * outcome.degradation_always_on,
                100.0 * outcome.degradation_controlled,
                100.0 * outcome.throughput_retained,
            ]
        )
    result.summary = {
        "mean_controlled_degr_pct": arithmetic_mean(controlled),
        "mean_throughput_cost_pct": 100.0 - arithmetic_mean(retained),
    }
    return result


if __name__ == "__main__":
    print(run().render())
