"""Crash-consistent endpoint recovery — snapshots + journal vs rebuild.

Not a figure from the paper: CABLE's evaluation assumes endpoints
never lose their mirrored metadata. This campaign asks the
crash-consistency question a deployment would: when an endpoint loses
its volatile tracking state (home: WMT + hash table + breaker;
remote: hash table + eviction buffer) at a randomized point — possibly
with a torn snapshot or a damaged journal — can it resynchronize
without ever silently corrupting a transfer, in bounded time, and for
measurably less link traffic than a full ground-truth rebuild?

Three scenarios share one seeded kill schedule:

- ``snapshot+journal`` — the durable path: versioned checksummed
  snapshots plus epoch-tagged journal replay, with the epoch handshake
  degrading to incremental audit-rebuild whenever the restore cannot
  be proven complete (corrupt snapshot generations are detected by
  checksum and skipped; poisoned journals are refused);
- ``ground-truth`` — the baseline: no durability manager, every crash
  is a stop-the-world rebuild from the peer's cache contents;
- ``memlink+crashes`` — scripted kills inside the real memory-link
  simulation, proving recovery interleaves with live compressed
  traffic (the effective ratio survives).

Every reconstruction is byte-verified; acceptance demands ≥ 1000 kill
points with zero silent corruptions and the replay path cheaper per
crash than the rebuild path.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import summarize_recovery
from repro.experiments.base import ExperimentResult, memlink_config, resolve_scale
from repro.fault.campaign import run_crash_campaign
from repro.fault.plan import FaultPlan
from repro.sim.memlink import run_memlink
from repro.state.plan import DurabilityPolicy

EXPERIMENT_ID = "CrashRecovery"

#: Kill schedule: per-access crash probability per endpoint, plus the
#: persistent-store sabotage mix (torn newest snapshot; journal device
#: poisoned or its unsynced tail silently lost).
CAMPAIGN_PLAN = FaultPlan(
    seed=0xC8A54,
    home_crash_rate=0.08,
    remote_crash_rate=0.08,
    snapshot_corrupt_rate=0.25,
    journal_loss_rate=0.25,
)

#: Synthetic-campaign length per scale preset; the default preset's
#: ~15.4% kill rate per access yields ≥ 1000 kill points.
CAMPAIGN_ACCESSES = {"smoke": 2_500, "default": 7_000, "paper": 20_000}

DURABILITY = DurabilityPolicy()

#: Scripted kills for the memlink scenario (access index, side).
MEMLINK_CRASHES = ((800, "home"), (1_500, "remote"), (2_600, "home"))

DEFAULT_BENCHMARK = "omnetpp"


def run(
    scale="default", benchmarks: Optional[Sequence[str]] = None
) -> ExperimentResult:
    preset = resolve_scale(scale)
    accesses = CAMPAIGN_ACCESSES.get(preset.name, preset.accesses)
    benchmark = (benchmarks or (DEFAULT_BENCHMARK,))[0]
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Crash-consistent endpoint recovery",
        headers=[
            "scenario",
            "kills",
            "replays",
            "rebuilds",
            "snap_corrupt",
            "mean_replay_bits",
            "mean_rebuild_bits",
            "traffic/crash",
            "silent",
            "audit_ok",
        ],
        paper_claim=(
            "Beyond the paper: a crashed endpoint restores from "
            "snapshot + journal replay (epoch handshake arbitrating "
            "trust) for measurably less link traffic than a "
            "ground-truth rebuild, with zero silent corruptions and "
            "bounded recovery time"
        ),
    )

    durable = run_crash_campaign(
        CAMPAIGN_PLAN, durability=DURABILITY, accesses=accesses
    )
    baseline = run_crash_campaign(
        CAMPAIGN_PLAN, durability=None, accesses=accesses
    )
    for name, rep in (("snapshot+journal", durable), ("ground-truth", baseline)):
        stats = summarize_recovery(rep.health)
        result.rows.append(
            [
                name,
                rep.kill_points,
                rep.replays,
                rep.rebuilds,
                int(stats["snapshot_corruptions_detected"]),
                rep.mean_replay_bits,
                rep.mean_rebuild_bits,
                stats["traffic_per_crash_bits"],
                rep.silent_corruptions,
                int(rep.final_audit_ok),
            ]
        )

    memlink = run_memlink(
        benchmark,
        memlink_config(
            preset, durability=DURABILITY, crash_points=MEMLINK_CRASHES
        ),
    )
    mstats = summarize_recovery(memlink.health)
    result.rows.append(
        [
            f"memlink:{benchmark}",
            int(mstats["endpoint_crashes"]),
            int(mstats["journal_replays"]),
            int(mstats["full_rebuilds"]),
            int(mstats["snapshot_corruptions_detected"]),
            mstats["mean_replay_bits"],
            mstats["mean_rebuild_bits"],
            mstats["traffic_per_crash_bits"],
            int(mstats["silent_corruptions"]),
            int(memlink.effective_ratio > 1.0),
        ]
    )

    dstats = summarize_recovery(durable.health)
    bstats = summarize_recovery(baseline.health)
    mean_rebuild = bstats["mean_rebuild_bits"]
    result.summary = {
        "kill_points": durable.kill_points
        + baseline.kill_points
        + int(mstats["endpoint_crashes"]),
        "silent_corruptions": durable.silent_corruptions
        + baseline.silent_corruptions
        + int(mstats["silent_corruptions"]),
        "snapshot_corruptions_detected": int(
            dstats["snapshot_corruptions_detected"]
        ),
        "replay_fraction": dstats["replay_fraction"],
        "mean_replay_traffic_bits": dstats["mean_replay_bits"],
        "mean_rebuild_traffic_bits": mean_rebuild,
        "traffic_savings_pct": (
            100.0 * (1.0 - dstats["mean_replay_bits"] / mean_rebuild)
            if mean_rebuild
            else 0.0
        ),
        "recovery_bounded": int(durable.ok and baseline.ok),
        "memlink_eff_ratio": memlink.effective_ratio,
    }
    return result


if __name__ == "__main__":
    print(run().render())
