"""Fig 22 — data-access-count sensitivity.

After pre-ranking, CABLE reads the top-N candidates from the data
array. The paper finds low counts resilient — even one access stays
within ~80% of 64 accesses at worst — because duplicated LineIDs in
the hash-table output (several signatures agreeing) are a strong
signal that pre-ranking exploits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import geometric_mean
from repro.core.config import CableConfig
from repro.experiments.base import (
    ExperimentResult,
    SWEEP_BENCHMARKS,
    cached_memlink,
)

EXPERIMENT_ID = "Fig 22"

ACCESS_COUNTS = (1, 2, 4, 6, 16, 64)


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or SWEEP_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Compression vs data-access count (relative to 64)",
        headers=["benchmark"] + [str(c) for c in ACCESS_COUNTS],
        paper_claim="One access stays within ~80% of 64 at worst",
    )
    per_count: Dict[int, List[float]] = {c: [] for c in ACCESS_COUNTS}
    for benchmark in benchmarks:
        baseline = cached_memlink(
            benchmark, "cable", scale, cable=CableConfig(data_access_count=64)
        ).effective_ratio
        row: List = [benchmark]
        for count in ACCESS_COUNTS:
            sim = cached_memlink(
                benchmark,
                "cable",
                scale,
                cable=CableConfig(data_access_count=count),
            )
            relative = sim.effective_ratio / baseline
            per_count[count].append(relative)
            row.append(relative)
        result.rows.append(row)
    result.summary = {
        str(c): geometric_mean(per_count[c]) for c in ACCESS_COUNTS
    }
    return result


if __name__ == "__main__":
    print(run().render())
