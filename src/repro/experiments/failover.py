"""Failover campaign — kill the primary under live client traffic.

Beyond the paper: CABLE's evaluation never considers an endpoint
dying. This experiment runs the replicated link service
(`repro/replica/` + `repro/serve/`) under 8–16 concurrent loadgen
clients while a deterministic :class:`~repro.replica.plan.FailoverPlan`
kills each session's primary at scripted *and* randomized points —
several hundred kills per run at the default scale. Every kill
promotes the warm standby mid-traffic: live sessions are redirected
through the existing HELLO/EPOCH resync handshake, a provably
caught-up standby promotes *hot* (no resync traffic), a lagging one
promotes *warm* (audit-repair resync), and the old primary rejoins as
the new standby. The replication stream itself is sabotaged (dropped
and corrupted batches) so snapshot catch-up carries real traffic too.

Reported per row: kills and the hot/warm promotion split, records
lost to replication lag (bounded by the policy), catch-ups, peak lag,
silent corruptions (must be zero), and client-side p50/p99 latency
with the p99 "blip" relative to a no-kill baseline run. Latency
columns are wall-clock and machine-dependent;
``clients/accesses/kills/hot/warm/lost/catch_ups/lag_peak/silent``
are deterministic and drift-checked against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, resolve_scale

EXPERIMENT_ID = "Failover"

#: Concurrent client counts swept (x-axis).
CLIENT_COUNTS = (8, 16)

#: Randomized kill probability per completed access (on top of the
#: scripted points), reseeded per session.
KILL_RATE = 0.03

#: Scripted kills land every this-many accesses, starting at 5 — the
#: scripted/randomized mix the issue calls for.
SCRIPTED_STRIDE = 12

#: Replication-stream sabotage rates (exercises checksummed batches,
#: gap detection, and snapshot catch-up under live load).
BATCH_DROP_RATE = 0.05
BATCH_CORRUPT_RATE = 0.05

#: A p99 blip above this multiple of the no-kill baseline fails the
#: run. Deliberately generous — the assertion is "bounded", not
#: "invisible", and CI machines are noisy.
BLIP_BOUND = 8.0

SEED = 0xCAB1E


def _build_plan(per_client: int):
    from repro.replica.plan import FailoverPlan

    return FailoverPlan(
        seed=0xF0,
        kill_rate=KILL_RATE,
        scripted_kills=tuple(range(5, per_client, SCRIPTED_STRIDE)),
        batch_drop_rate=BATCH_DROP_RATE,
        batch_corrupt_rate=BATCH_CORRUPT_RATE,
    )


def run(
    scale="default", client_counts: Optional[Sequence[int]] = None
) -> ExperimentResult:
    from repro.fault.campaign import run_failover_campaign

    client_counts = tuple(client_counts or CLIENT_COUNTS)
    preset = resolve_scale(scale)
    per_client = max(48, preset.accesses // 20)
    plan = _build_plan(per_client)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Zero-downtime failover under live client traffic",
        headers=[
            "clients",
            "accesses",
            "kills",
            "hot",
            "warm",
            "lost",
            "catch_ups",
            "lag_peak",
            "silent",
            "p50_ms",
            "p99_ms",
            "blip",
        ],
        paper_claim=(
            "Beyond the paper: a warm standby consuming the epoch-tagged "
            "metadata journal survives hundreds of primary kills under "
            "live traffic — every promotion lands mid-session via the "
            "epoch handshake with zero silent corruptions, replication "
            "lag stays under the policy bound, and the p99 latency blip "
            "is bounded against a no-kill baseline"
        ),
    )
    totals = {
        "kills": 0,
        "hot_promotions": 0,
        "warm_promotions": 0,
        "lost_records": 0,
        "catch_ups": 0,
        "silent_corruptions": 0,
    }
    all_clean = True
    lag_bounded = True
    blip_bounded = True
    for clients in client_counts:
        report = run_failover_campaign(
            plan, clients=clients, accesses=per_client, seed=SEED
        )
        result.rows.append(
            [
                clients,
                report.accesses,
                report.kills,
                report.hot_promotions,
                report.warm_promotions,
                report.lost_records,
                report.catch_ups,
                report.replica_lag_peak,
                report.silent_corruptions,
                report.p50_ms,
                report.p99_ms,
                report.p99_blip,
            ]
        )
        totals["kills"] += report.kills
        totals["hot_promotions"] += report.hot_promotions
        totals["warm_promotions"] += report.warm_promotions
        totals["lost_records"] += report.lost_records
        totals["catch_ups"] += report.catch_ups
        totals["silent_corruptions"] += report.silent_corruptions
        all_clean = all_clean and report.ok
        lag_bounded = lag_bounded and report.lag_bounded
        blip_bounded = blip_bounded and report.p99_blip <= BLIP_BOUND
    result.summary = {
        "kills": totals["kills"],
        "hot_promotions": totals["hot_promotions"],
        "warm_promotions": totals["warm_promotions"],
        "lost_records": totals["lost_records"],
        "catch_ups": totals["catch_ups"],
        "silent_corruptions": totals["silent_corruptions"],
        "lag_bounded": int(lag_bounded),
        "p99_blip_bounded": int(blip_bounded),
        "drained_clean": int(all_clean),
    }
    return result


if __name__ == "__main__":
    print(run().render())
