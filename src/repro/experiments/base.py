"""Shared experiment infrastructure.

Every table and figure of the paper's evaluation has a module here
exposing ``run(scale=..., benchmarks=...) -> ExperimentResult``. The
``scale`` presets trade fidelity for runtime; all of them keep the
paper's *ratios* between structure sizes (working set : LLC : L4 :
gzip window) so the dictionary-size relationships every conclusion
rests on are preserved:

========= ========== ============ ==========================
preset    accesses   LLC per thread  intended use
========= ========== ============ ==========================
smoke     1,500      32KB         unit/integration tests
default   4,000      64KB         pytest-benchmark targets
paper     20,000     256KB        EXPERIMENTS.md numbers
========= ========== ============ ==========================

Simulation results are memoized per (preset, scheme, benchmark, …) so
figures that share runs (e.g. Fig 11/12/14/17/18 all need the same
memory-link grid) pay for them once per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.memlink import MemLinkConfig, MemLinkResult, run_memlink

_MB = 1024 * 1024


@dataclass(frozen=True)
class ScalePreset:
    name: str
    accesses: int
    llc_bytes: int
    warmup_fraction: float = 0.25

    @property
    def ws_scale(self) -> float:
        return self.llc_bytes / (1 * _MB)

    @property
    def l4_bytes(self) -> int:
        return 4 * self.llc_bytes  # the paper's 1:4 LLC:L4 ratio


SCALES: Dict[str, ScalePreset] = {
    "smoke": ScalePreset("smoke", 1_500, 32 * 1024),
    "default": ScalePreset("default", 4_000, 64 * 1024),
    "paper": ScalePreset("paper", 20_000, 256 * 1024),
}


def resolve_scale(scale) -> ScalePreset:
    if isinstance(scale, ScalePreset):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        known = ", ".join(SCALES)
        raise ValueError(f"unknown scale {scale!r}; known: {known}") from None


def memlink_config(scale, **overrides) -> MemLinkConfig:
    preset = resolve_scale(scale)
    config = MemLinkConfig(
        accesses=preset.accesses,
        llc_bytes=preset.llc_bytes,
        l4_bytes=preset.l4_bytes,
        ws_scale=preset.ws_scale,
        warmup_fraction=preset.warmup_fraction,
    )
    if overrides:
        config = config.scaled(**overrides)
    return config


@dataclass
class ExperimentResult:
    """A reproduced table/figure: rows plus a summary and paper notes."""

    experiment_id: str
    title: str
    headers: List[str] = field(default_factory=list)
    rows: List[List] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    paper_claim: str = ""

    def as_json(self) -> Dict:
        """Machine-readable image of the result: what ``render`` prints
        as a text table, as structured data. Archived alongside the
        ``.txt`` so downstream checks stop re-parsing human tables."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "summary": dict(self.summary),
            "paper_claim": self.paper_claim,
        }

    def render(self) -> str:
        from repro.analysis.report import format_table

        parts = [
            format_table(
                self.headers, self.rows, title=f"{self.experiment_id}: {self.title}"
            )
        ]
        if self.summary:
            summary = ", ".join(
                f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in self.summary.items()
            )
            parts.append(f"summary: {summary}")
        if self.paper_claim:
            parts.append(f"paper: {self.paper_claim}")
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Memoized simulation grid
# ----------------------------------------------------------------------

_CACHE: Dict[Tuple, MemLinkResult] = {}


def cached_memlink(
    benchmark: str, scheme: str, scale, **overrides
) -> MemLinkResult:
    """Run (or fetch) one memory-link simulation."""
    preset = resolve_scale(scale)
    key = (
        "memlink",
        benchmark,
        scheme,
        preset.name,
        tuple(sorted(overrides.items(), key=lambda kv: kv[0])),
    )
    if key not in _CACHE:
        config = memlink_config(preset, scheme=scheme, **overrides)
        _CACHE[key] = run_memlink(benchmark, config)
    return _CACHE[key]


def clear_cache() -> None:
    _CACHE.clear()


#: The scheme lineup of Figs 11–13 in plotting order.
FIGURE_SCHEMES: Tuple[str, ...] = (
    "bdi",
    "cpack",
    "cpack128",
    "lbe256",
    "gzip",
    "cable",
)

#: Representative non-trivial benchmarks for the sensitivity sweeps
#: (§VI-E excludes zero-dominant benchmarks; sweeps use a spread of
#: CABLE-favoured, gzip-favoured and neutral workloads to keep bench
#: runtimes sane — the full-suite figures cover all 29).
SWEEP_BENCHMARKS: Tuple[str, ...] = (
    "dealII",
    "gcc",
    "gobmk",
    "omnetpp",
    "perlbench",
    "sphinx3",
)
