"""Fig 19 — memory-link compression across cache sizes.

(a) LLC per thread swept (keeping the 1:4 LLC:L4 ratio and the
workload footprint fixed relative to the paper's regime): ratios stay
mostly flat, improving slightly with cache size as fewer hard-to-
compress spill/fill patterns reach the link.

(b) LLC fixed, L4 ratio swept 1:2 → 1:8: averages move within ~1%,
because CABLE's usable dictionary is bounded by the *smaller* cache
(the LLC), which does not change.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import geometric_mean
from repro.experiments.base import (
    ExperimentResult,
    SWEEP_BENCHMARKS,
    memlink_config,
    resolve_scale,
)
from repro.sim.memlink import run_memlink

EXPERIMENT_ID = "Fig 19"

#: (a) LLC sizes as multiples of the preset's base LLC share.
LLC_MULTIPLIERS = (0.5, 1, 2, 4)
#: (b) L4:LLC ratios.
L4_RATIOS = (2, 4, 8)


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    preset = resolve_scale(scale)
    benchmarks = list(benchmarks or SWEEP_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Compression across cache sizes (a) and L4 ratios (b)",
        headers=["config", "cable_geomean", "gzip_geomean"],
        paper_claim=(
            "(a) ratios mostly static, slightly better with bigger caches; "
            "(b) averages within ~1% across L4 ratios"
        ),
    )
    for mult in LLC_MULTIPLIERS:
        llc = int(preset.llc_bytes * mult)
        cable_vals, gzip_vals = [], []
        for benchmark in benchmarks:
            config = memlink_config(
                preset, llc_bytes=llc, l4_bytes=llc * 4
            )
            cable_vals.append(
                run_memlink(benchmark, config.scaled(scheme="cable")).effective_ratio
            )
            gzip_vals.append(
                run_memlink(benchmark, config.scaled(scheme="gzip")).effective_ratio
            )
        result.rows.append(
            [f"(a) LLC x{mult}", geometric_mean(cable_vals), geometric_mean(gzip_vals)]
        )
    for ratio in L4_RATIOS:
        cable_vals, gzip_vals = [], []
        for benchmark in benchmarks:
            config = memlink_config(
                preset, l4_bytes=preset.llc_bytes * ratio
            )
            cable_vals.append(
                run_memlink(benchmark, config.scaled(scheme="cable")).effective_ratio
            )
            gzip_vals.append(
                run_memlink(benchmark, config.scaled(scheme="gzip")).effective_ratio
            )
        result.rows.append(
            [f"(b) L4 1:{ratio}", geometric_mean(cable_vals), geometric_mean(gzip_vals)]
        )
    a_rows = [r for r in result.rows if r[0].startswith("(a)")]
    b_rows = [r for r in result.rows if r[0].startswith("(b)")]
    result.summary = {
        "a_cable_span": a_rows[-1][1] / a_rows[0][1],
        "b_cable_span": max(r[1] for r in b_rows) / min(r[1] for r in b_rows),
    }
    return result


if __name__ == "__main__":
    print(run().render())
