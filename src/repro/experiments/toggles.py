"""§VI-D (text) — bit-toggle reduction on unscrambled links.

CABLE reduces bit toggles by 30.2% on average in the paper (16.9%
less than CPACK's reduction... i.e. CPACK reduces less). Fewer flits
mean fewer transitions even though compressed bits are denser; this
experiment serializes real payload bit streams and counts transitions
on the 16-bit bus.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.base import (
    ExperimentResult,
    SWEEP_BENCHMARKS,
    memlink_config,
)
from repro.sim.memlink import run_memlink

EXPERIMENT_ID = "Toggles (§VI-D)"

_SCHEMES = ("cpack", "cable")


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or SWEEP_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Bit-toggle reduction on a 16-bit link (%)",
        headers=["benchmark", "cpack_pct", "cable_pct"],
        paper_claim="CABLE reduces toggles ~30% on average, more than CPACK",
    )
    reductions: Dict[str, List[float]] = {s: [] for s in _SCHEMES}
    for benchmark in benchmarks:
        row: List = [benchmark]
        for scheme in _SCHEMES:
            config = memlink_config(scale, scheme=scheme, count_toggles=True)
            sim = run_memlink(benchmark, config)
            reduction = 100.0 * sim.toggle_reduction
            reductions[scheme].append(reduction)
            row.append(reduction)
        result.rows.append(row)
    result.summary = {
        f"{s}_mean_pct": arithmetic_mean(reductions[s]) for s in _SCHEMES
    }
    return result


if __name__ == "__main__":
    print(run().render())
