"""Serving sweep — the link service under concurrent client load.

Not a figure from the paper: CABLE's evaluation is trace-driven and
in-process. This sweep runs the same verified endpoints behind the
asyncio link service (`repro/serve/`) and asks the deployment
questions: does the protocol hold up over real byte streams with many
concurrent sessions, is backpressure observable (bounded queues, no
silent buffering), does injected wire damage stay loud, and does the
graceful drain end with every per-session audit clean?

Per client count, N concurrent clients replay deterministic trace
streams over in-process duplex pipes (same handler and protocol as
TCP, no sockets — so the row's deterministic columns are
machine-independent). The single-client row runs with a deliberately
tiny admission queue and an oversized client window, guaranteeing the
backpressure path (RETRY + client backoff) is exercised on every run.

Reported per row: verified frames, NACK/retransmit traffic under a
fixed wire-fault rate, observed backpressure events, silent
corruptions (must be zero), and client-side p50/p99 latency with
throughput. Latency and throughput columns are machine-dependent;
``clients/accesses/frames/nacks/silent`` are deterministic and
drift-checked against EXPERIMENTS.md.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, resolve_scale

EXPERIMENT_ID = "Serving"

#: Concurrent client counts swept (x-axis).
CLIENT_COUNTS = (1, 4, 16)

#: Wire fault rate armed for every row (per-session reseeded), so the
#: NACK/retransmit path carries real traffic at every client count.
FAULT_RATE = 0.02

SEED = 0xCAB1E


def _row_config(clients: int):
    from repro.fault.plan import FaultPlan
    from repro.serve.session import ServeConfig

    faults = FaultPlan.uniform(FAULT_RATE, seed=SEED)
    if clients == 1:
        # Tiny queue + oversized window: the client's burst overruns
        # admission control by construction, so this row demonstrates
        # bounded queues and RETRY/backoff on every run.
        return ServeConfig(queue_depth=2, faults=faults), 16
    return ServeConfig(queue_depth=8, faults=faults), 8


async def _run_row(clients: int, per_client: int):
    from repro.serve.loadgen import run_loadgen
    from repro.serve.server import LinkService

    config, window = _row_config(clients)
    service = LinkService(config)
    report = await run_loadgen(
        clients=clients,
        accesses=per_client,
        service=service,
        seed=SEED,
        window=window,
    )
    return report


def run(
    scale="default", client_counts: Optional[Sequence[int]] = None
) -> ExperimentResult:
    client_counts = tuple(client_counts or CLIENT_COUNTS)
    preset = resolve_scale(scale)
    per_client = max(24, preset.accesses // 50)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Link service under concurrent client load",
        headers=[
            "clients",
            "accesses",
            "frames",
            "nacks",
            "retransmits",
            "backpressure",
            "silent",
            "p50_ms",
            "p99_ms",
            "lines_per_s",
        ],
        paper_claim=(
            "Beyond the paper: the verified endpoints survive a real "
            "transport — bounded per-session queues surface overflow as "
            "observable backpressure, injected wire damage is repaired "
            "via NACK/retransmit with zero silent corruptions, and the "
            "graceful drain ends with every session audit clean"
        ),
    )
    peak = total_frames = total_backpressure = total_silent = 0
    all_clean = True
    for clients in client_counts:
        report = asyncio.run(_run_row(clients, per_client))
        result.rows.append(
            [
                clients,
                report.accesses,
                report.frames,
                report.nacks,
                report.retransmits,
                report.backpressure,
                report.silent_corruptions,
                report.p50_ms,
                report.p99_ms,
                report.lines_per_s,
            ]
        )
        peak = max(peak, report.sessions_peak)
        total_frames += report.frames
        total_backpressure += report.backpressure
        total_silent += report.silent_corruptions
        all_clean = all_clean and report.ok
    result.summary = {
        "max_sessions": peak,
        "total_frames": total_frames,
        "backpressure_events": total_backpressure,
        "silent_corruptions": total_silent,
        "drained_clean": int(all_clean),
    }
    return result


if __name__ == "__main__":
    print(run().render())
