"""Cluster kill campaign — worker deaths under live routed traffic.

Beyond the paper: this is the multi-process end of the robustness
story. A :class:`~repro.serve.cluster.supervisor.ClusterService`
shards sessions across real worker processes behind a consistent-hash
front router; a :class:`~repro.fault.injectors.WorkerFaultInjector`
SIGKILLs, hangs, and byzantine-slows workers while dozens of
reconnect-resilient clients drive access batches through the router.
Every kill must resolve to a recovery: the victim's sessions promote
from the journal shadows its buddy worker holds (cross-process
shipping, ``repro/replica/remote``) and clients resume through the
HELLO/EPOCH resync path.

Reported per row: one fault mode (sigkill / hang / slow) with how many
faults the injector scheduled and how many recoveries the supervisor's
detector attributed to the matching cause. The scheduled counts are
deterministic (seeded injector, fixed kill budget); the attributed
cause can legitimately differ (a byzantine-slow worker whose stall
eats the heartbeat deadline is diagnosed as hung), so only
``mode``/``scheduled`` are drift-checked against EXPERIMENTS.md.

The summary carries the invariants the campaign gates: every scheduled
kill recovered, zero lost sessions (every victim's sessions resumed on
the buddy), zero silent corruptions, bounded router p99 blip vs the
no-fault baseline, and a clean final drain.
"""

from __future__ import annotations

import asyncio

from repro.experiments.base import ExperimentResult, resolve_scale

EXPERIMENT_ID = "Cluster"

SEED = 0xCAB1E

#: Campaign shape per scale preset: (workers, clients, kills).
CAMPAIGN_SCALES = {
    "smoke": (4, 8, 12),
    "default": (8, 64, 200),
    "paper": (8, 96, 300),
}

#: Per-batch access counts (baseline batch, storm batch). Small on
#: purpose: the campaign's unit of progress is the batch, and short
#: batches keep reconnect-and-resume cycles frequent under the storm.
BASELINE_ACCESSES = 32
BATCH_ACCESSES = 24

#: A p99 blip above this multiple of the no-fault baseline fails the
#: run. Generous by design — the claim is "bounded", not "invisible":
#: recovery windows freeze tags and clients spin on reconnect.
BLIP_LIMIT = 8.0

HEARTBEAT_INTERVAL = 0.2


def run(scale="default") -> ExperimentResult:
    from repro.serve.cluster.campaign import run_cluster_campaign

    preset = resolve_scale(scale)
    workers, clients, kills = CAMPAIGN_SCALES.get(
        preset.name, CAMPAIGN_SCALES["default"]
    )
    report = asyncio.run(
        run_cluster_campaign(
            workers=workers,
            clients=clients,
            kills=kills,
            baseline_accesses=BASELINE_ACCESSES,
            batch_accesses=BATCH_ACCESSES,
            seed=SEED,
            heartbeat_interval=HEARTBEAT_INTERVAL,
            blip_limit=BLIP_LIMIT,
        )
    )
    drain = report.drain_report
    supervisor = drain.get("supervisor", {}) if isinstance(drain, dict) else {}
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Sharded link service under a worker kill storm",
        headers=["mode", "scheduled", "recovered_as"],
        rows=[
            ["sigkill", report.kills_sigkill, supervisor.get("recoveries_crash", 0)],
            ["hang", report.kills_hang, supervisor.get("recoveries_hang", 0)],
            ["slow", report.kills_slow, supervisor.get("recoveries_slow", 0)],
            ["total", report.kills, report.recoveries],
        ],
        paper_claim=(
            "Beyond the paper: a consistent-hash router over supervised "
            "worker processes survives hundreds of SIGKILL/hang/slow "
            "faults under live traffic — every victim's sessions resume "
            "on its buddy via cross-process journal shipping with zero "
            "silent corruptions and a bounded router p99 blip"
        ),
    )
    result.summary = {
        "workers": report.workers,
        "clients": report.clients,
        "kills": report.kills,
        "recoveries": report.recoveries,
        "sessions_failed_over": report.sessions_failed_over,
        "sessions_adopted": report.sessions_adopted,
        "lost_sessions": report.lost_sessions,
        "resumed_opens": report.resumed_opens,
        "reconnects": report.reconnects,
        "planned": report.planned,
        "completed": report.completed,
        "silent_corruptions": report.silent_corruptions,
        "audit_failures": report.audit_failures,
        "seeds_shipped": report.seeds_shipped,
        "records_shipped": report.records_shipped,
        "p99_blip": round(report.p99_blip, 3),
        "p99_blip_bounded": report.p99_blip_bounded,
        "drained_clean": report.drained_clean,
        "campaign_ok": int(report.ok),
    }
    return result


if __name__ == "__main__":
    print(run().render())
