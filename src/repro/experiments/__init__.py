"""One module per paper table/figure; see DESIGN.md's experiment index.

Every module exposes ``run(scale=..., ...) -> ExperimentResult`` and
can be executed directly (``python -m repro.experiments.fig12``).
"""

from repro.experiments.base import (
    ExperimentResult,
    SCALES,
    ScalePreset,
    resolve_scale,
    memlink_config,
    cached_memlink,
    clear_cache,
    FIGURE_SCHEMES,
    SWEEP_BENCHMARKS,
)

__all__ = [
    "ExperimentResult",
    "SCALES",
    "ScalePreset",
    "resolve_scale",
    "memlink_config",
    "cached_memlink",
    "clear_cache",
    "FIGURE_SCHEMES",
    "SWEEP_BENCHMARKS",
]
