"""Fig 3 — compression ratio of ideal dictionary algorithms vs
dictionary size, with and without pointer overhead.

The paper's motivating study: using a CPACK-style word-match coder
with a configurable dictionary and no symbol overheads, compression
keeps improving with dictionary size ("Ideal") — but once each match
is charged a log2(dictionary)-bit pointer ("Ideal With Pointer"), the
gain disappears, matching prior work's finding that ~128B dictionaries
were optimal. This is precisely the pointer-overhead problem CABLE's
line-granularity pointers and WMT attack.

The model: a FIFO word dictionary of the configured size; each 32-bit
word of the off-chip miss stream costs
- 0 bits (Ideal) or ``log2(entries)`` bits (With Pointer) on a match,
- 32 bits (+dictionary insert) on a miss, 1 bit on a zero word.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import geometric_mean
from repro.experiments.base import ExperimentResult, memlink_config
from repro.sim.memlink import MemLinkSimulation
from repro.util.bits import bits_for
from repro.util.words import bytes_to_words

EXPERIMENT_ID = "Fig 3"

#: Dictionary sizes swept (bytes): 64B (CPACK) up to 8MB (cache-sized).
DICTIONARY_SIZES = (64, 256, 1024, 4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024)

_DEFAULT_BENCHMARKS = ("gcc", "dealII", "omnetpp", "gobmk", "sphinx3")


class _IdealDictionary:
    """FIFO word dictionary with O(1) membership."""

    def __init__(self, capacity_words: int) -> None:
        self.capacity = capacity_words
        self._order: deque = deque()
        self._counts: Dict[int, int] = {}

    def __contains__(self, word: int) -> bool:
        return word in self._counts

    def push(self, word: int) -> None:
        self._order.append(word)
        self._counts[word] = self._counts.get(word, 0) + 1
        while len(self._order) > self.capacity:
            old = self._order.popleft()
            remaining = self._counts[old] - 1
            if remaining:
                self._counts[old] = remaining
            else:
                del self._counts[old]


def miss_stream_lines(benchmark: str, scale) -> List[bytes]:
    """The lines crossing the off-chip link for one benchmark."""
    config = memlink_config(scale, scheme="raw")
    lines: List[bytes] = []
    sim = MemLinkSimulation(benchmark, config)

    def capture(event):
        if event.kind in ("fill", "writeback"):
            lines.append(event.data)

    sim.pair.add_observer(capture)
    sim.run()
    return lines


def sweep_one(lines: Sequence[bytes], dictionary_bytes: int) -> Dict[str, float]:
    """Ideal / with-pointer ratios for one dictionary size."""
    entries = max(1, dictionary_bytes // 4)
    pointer_bits = bits_for(entries)
    dictionary = _IdealDictionary(entries)
    ideal_bits = 0
    pointer_total_bits = 0
    raw_bits = 0
    for line in lines:
        for word in bytes_to_words(line):
            raw_bits += 32
            if word == 0:
                ideal_bits += 1
                pointer_total_bits += 1
            elif word in dictionary:
                ideal_bits += 1
                pointer_total_bits += 1 + pointer_bits
            else:
                ideal_bits += 1 + 32
                pointer_total_bits += 1 + 32
                dictionary.push(word)
    return {
        "ideal": raw_bits / max(ideal_bits, 1),
        "with_pointer": raw_bits / max(pointer_total_bits, 1),
    }


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or _DEFAULT_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Ideal dictionary compression vs dictionary size",
        headers=["dictionary", "ideal", "ideal_with_pointer"],
        paper_claim=(
            "Ideal ratio grows with dictionary size; charging per-word "
            "pointers flattens the curve (optimum near small dictionaries)"
        ),
    )
    streams = {b: miss_stream_lines(b, scale) for b in benchmarks}
    ideal_curve = []
    pointer_curve = []
    for size in DICTIONARY_SIZES:
        ideal_vals = []
        pointer_vals = []
        for benchmark in benchmarks:
            ratios = sweep_one(streams[benchmark], size)
            ideal_vals.append(ratios["ideal"])
            pointer_vals.append(ratios["with_pointer"])
        ideal = geometric_mean(ideal_vals)
        pointer = geometric_mean(pointer_vals)
        ideal_curve.append(ideal)
        pointer_curve.append(pointer)
        label = f"{size}B" if size < 1024 else f"{size // 1024}KB"
        result.rows.append([label, ideal, pointer])
    result.summary = {
        "ideal_growth": ideal_curve[-1] / ideal_curve[0],
        "pointer_growth": pointer_curve[-1] / pointer_curve[0],
    }
    return result


if __name__ == "__main__":
    print(run().render())
