"""Cluster scaling sweep — serving throughput vs worker count.

The sharding half of the cluster story: with no faults injected, does
routing sessions across more worker processes actually buy
throughput? Each row brings up a fresh
:class:`~repro.serve.cluster.supervisor.ClusterService` with N
workers, drives a fixed client population through the front router to
batch completion, and reports end-to-end accesses/s.

The honest claim is *near-linear up to the core count*: worker
processes are CPU-bound Python, so beyond ``os.cpu_count()`` they
timeslice one another and throughput plateaus. ``scaling_ok`` encodes
exactly that — for worker counts up to the core count throughput must
reach ``LINEAR_FLOOR`` of perfect linear scaling over the 1-worker
row, and past the core count it must merely not collapse below
``PLATEAU_FLOOR`` of the 1-worker rate (router + supervision overhead
must stay modest even when the parallelism is fictional). On a
single-core container the linear leg is vacuous and the sweep is
testing overhead, which is the truth of that machine.

``workers/clients/accesses/completed/silent/drained`` are
deterministic and drift-checked against EXPERIMENTS.md; the rate and
latency columns are wall-clock.
"""

from __future__ import annotations

import asyncio
import os
from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult, resolve_scale

EXPERIMENT_ID = "ClusterScaling"

SEED = 0xCAB1E

#: Worker counts swept (x-axis).
WORKER_COUNTS = (1, 2, 4, 8)

#: Fixed client population for every row — the sweep varies only the
#: number of shards behind the router.
CLIENTS = 16

#: Minimum fraction of perfect linear scaling (vs the 1-worker row)
#: required while worker count <= os.cpu_count().
LINEAR_FLOOR = 0.6

#: Minimum fraction of the 1-worker rate tolerated once workers
#: oversubscribe the cores (plateau, not collapse).
PLATEAU_FLOOR = 0.5


def run(
    scale="default", worker_counts: Optional[Sequence[int]] = None
) -> ExperimentResult:
    from repro.serve.cluster.campaign import run_cluster_serving

    worker_counts = tuple(worker_counts or WORKER_COUNTS)
    preset = resolve_scale(scale)
    per_client = max(24, preset.accesses // 80)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Serving throughput vs worker count (no faults)",
        headers=[
            "workers",
            "clients",
            "accesses",
            "completed",
            "silent",
            "drained",
            "p50_ms",
            "p99_ms",
            "acc_per_s",
        ],
        paper_claim=(
            "Beyond the paper: sharding sessions across worker "
            "processes scales serving throughput near-linearly up to "
            "the machine's core count and plateaus (rather than "
            "collapsing) once workers oversubscribe the cores"
        ),
    )
    rates = {}
    total_silent = 0
    all_clean = True
    for workers in worker_counts:
        report = asyncio.run(
            run_cluster_serving(
                workers=workers,
                clients=CLIENTS,
                accesses=per_client,
                seed=SEED,
            )
        )
        rates[workers] = report["accesses_per_s"]
        total_silent += report["silent_corruptions"]
        all_clean = all_clean and bool(report["drained_clean"])
        result.rows.append(
            [
                workers,
                report["clients"],
                report["planned"],
                report["completed"],
                report["silent_corruptions"],
                report["drained_clean"],
                round(report["p50_ms"], 3),
                round(report["p99_ms"], 3),
                round(report["accesses_per_s"], 1),
            ]
        )
    cores = os.cpu_count() or 1
    base = rates.get(worker_counts[0], 0.0)
    scaling_ok = base > 0
    for workers in worker_counts[1:]:
        rate = rates[workers]
        if workers <= cores:
            scaling_ok = scaling_ok and rate >= LINEAR_FLOOR * workers * base
        else:
            scaling_ok = scaling_ok and rate >= PLATEAU_FLOOR * base
    result.summary = {
        "cores": cores,
        "base_acc_per_s": round(base, 1),
        "peak_acc_per_s": round(max(rates.values()), 1) if rates else 0.0,
        "silent_corruptions": total_silent,
        "drained_clean": int(all_clean),
        "scaling_ok": int(scaling_ok),
    }
    return result


if __name__ == "__main__":
    print(run().render())
