"""Memory-tier scenario sweep (ROADMAP item 2).

Runs the three tier models of :mod:`repro.tiers` — CXL far-memory
expander, DRAM cache with software-managed placement, and the
capacity-mode compressed cache — across a workload spread that
includes the sparse-fiber tier profiles, and reports one row per
(tier, workload) with the common ratio / bandwidth / throughput
columns plus each tier's own headline numbers.

Row keys are ``tier/workload`` (the drift gate keys on the first
token of the row; ``/`` keeps the pair atomic). Cells a tier does not
define are ``—``, which the drift checker treats as a wildcard.

Columns:

- ``ratio`` / ``eff_ratio`` — payload and flit-quantized compression
  ratio of the tier's encoded link traffic;
- ``thr_mlps`` — bandwidth-limited line throughput of the bottleneck
  channel (M lines/s, model time);
- ``p50_ns`` / ``p99_ns`` — CXL fill-latency percentiles from the
  deterministic queue model;
- ``admit_pct`` / ``tag_save_pct`` — DRAM-cache admission rate and
  the lazy-vs-eager tag-update bandwidth saving;
- ``cap_gain`` / ``net_gain`` / ``meta_pct`` / ``fallbacks`` —
  capacity-mode raw occupancy gain, the same gain deflated by the
  explicit tag/metadata overhead (``meta_pct`` of data capacity), and
  slot-overflow fallback events.

Summary gates: zero silent corruptions (round-trip verification on
every tier), capacity audit clean, metadata overhead strictly
accounted (``net_gain < cap_gain`` whenever overhead is nonzero), and
the CXL cable leg never degrades p99 fill latency vs the raw link.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult, resolve_scale
from repro.tiers import (
    CapacityTierConfig,
    CxlTierConfig,
    DramCacheTierConfig,
    run_capacity_tier,
    run_cxl_tier,
    run_dram_tier,
)
from repro.tiers.base import TierResult

EXPERIMENT_ID = "Tiers"

#: Workload spread: a CABLE-favoured SPEC profile, a pointer-chasing
#: one, and the sparse-fiber tier profile the subsystem introduces.
TIER_WORKLOADS: Tuple[str, ...] = ("gcc", "omnetpp", "spmv")

NA = "—"


def tier_configs(scale) -> Dict[str, object]:
    """The three tier configs at one scale preset, paper ratios kept
    (buffer/window = 4× the near cache, like LLC:L4)."""
    preset = resolve_scale(scale)
    near = preset.llc_bytes
    common = dict(
        accesses=preset.accesses,
        warmup_fraction=preset.warmup_fraction,
        ws_scale=preset.ws_scale,
        line_bytes=64,
    )
    return {
        "cxl": CxlTierConfig(
            llc_bytes=near, buffer_bytes=4 * near, **common
        ),
        "dram": DramCacheTierConfig(
            cache_bytes=near, window_bytes=4 * near, **common
        ),
        "capacity": CapacityTierConfig(cache_bytes=near, **common),
    }


def _row(key: str, result: TierResult, **cells) -> List:
    base = {
        "scenario": key,
        "accesses": result.accesses,
        "transfers": result.transfers,
        "ratio": round(result.raw_ratio, 3),
        "eff_ratio": round(result.effective_ratio, 3),
        "thr_mlps": round(result.throughput_mlps, 3),
        "p50_ns": NA,
        "p99_ns": NA,
        "admit_pct": NA,
        "tag_save_pct": NA,
        "cap_gain": NA,
        "net_gain": NA,
        "meta_pct": NA,
        "fallbacks": NA,
    }
    base.update(cells)
    return list(base.values())


def run(
    scale="default", benchmarks: Optional[Sequence[str]] = None
) -> ExperimentResult:
    workloads = tuple(benchmarks or TIER_WORKLOADS)
    configs = tier_configs(scale)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Memory-tier scenarios: CXL, DRAM-cache, capacity mode",
        headers=[
            "scenario",
            "accesses",
            "transfers",
            "ratio",
            "eff_ratio",
            "thr_mlps",
            "p50_ns",
            "p99_ns",
            "admit_pct",
            "tag_save_pct",
            "cap_gain",
            "net_gain",
            "meta_pct",
            "fallbacks",
        ],
        paper_claim=(
            "Not in the paper: ROADMAP item 2 — the encoder on tier "
            "boundaries beyond the LLC link (CXL/DRAM-cache/capacity, "
            "cf. CRAM and Banshee)"
        ),
    )
    verify_failures = 0
    p99_speedups: List[float] = []
    overhead_honest = True
    capacity_missrate_deltas: List[float] = []
    for workload in workloads:
        cxl = run_cxl_tier(workload, configs["cxl"])
        cxl_raw = run_cxl_tier(workload, configs["cxl"].scaled(scheme="raw"))
        verify_failures += cxl.verify_failures + cxl_raw.verify_failures
        p99 = cxl.extras["p99_fill_ns"]
        p99_raw = cxl_raw.extras["p99_fill_ns"]
        if p99 > 0:
            p99_speedups.append(p99_raw / p99)
        result.rows.append(
            _row(
                f"cxl/{workload}",
                cxl,
                p50_ns=cxl.extras["p50_fill_ns"],
                p99_ns=p99,
            )
        )

        dram = run_dram_tier(workload, configs["dram"])
        verify_failures += dram.verify_failures
        result.rows.append(
            _row(
                f"dram/{workload}",
                dram,
                admit_pct=dram.extras["admit_pct"],
                tag_save_pct=dram.extras["tag_saved_pct"],
            )
        )

        capacity = run_capacity_tier(workload, configs["capacity"])
        baseline = run_capacity_tier(
            workload, configs["capacity"].scaled(capacity_mode=False)
        )
        verify_failures += capacity.verify_failures + baseline.verify_failures
        if capacity.extras["meta_ovh_pct"] > 0:
            overhead_honest &= (
                capacity.extras["net_gain"] < capacity.extras["cap_gain"]
            )
        capacity_missrate_deltas.append(baseline.miss_rate - capacity.miss_rate)
        result.rows.append(
            _row(
                f"capacity/{workload}",
                capacity,
                cap_gain=capacity.extras["cap_gain"],
                net_gain=capacity.extras["net_gain"],
                meta_pct=capacity.extras["meta_ovh_pct"],
                fallbacks=capacity.extras["fallbacks"],
            )
        )
    result.summary = {
        "tiers": 3.0,
        "workloads": float(len(workloads)),
        "silent_corruptions": float(verify_failures),
        "capacity_audit_ok": 1.0,  # run_capacity_tier audits before returning
        "overhead_accounted": float(overhead_honest),
        "cxl_p99_speedup_min": min(p99_speedups) if p99_speedups else 0.0,
        "capacity_missrate_delta_mean": (
            sum(capacity_missrate_deltas) / len(capacity_missrate_deltas)
            if capacity_missrate_deltas
            else 0.0
        ),
    }
    return result


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point (``repro-tiers``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-tiers",
        description="Run the memory-tier scenario sweep.",
    )
    parser.add_argument(
        "--scale", default="default", choices=("smoke", "default", "paper")
    )
    parser.add_argument("--benchmarks", nargs="+", default=None, metavar="BENCH")
    args = parser.parse_args(argv)
    print(run(scale=args.scale, benchmarks=args.benchmarks).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
