"""Fig 16 — destructive multiprogram mixes (Table VI).

Each MIX runs four unrelated programs on one link; each program's
compression ratio is measured separately and normalized to its
single-program result. gzip's fixed 32KB window gets polluted by the
interleaved streams (up to ~25% loss in the paper); CABLE's
cache-sized dictionary holds its single-program ratios and can even
gain where a mix contains related programs (MIX5's two bzip2 copies).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.base import ExperimentResult, cached_memlink, resolve_scale
from repro.sim.multiprogram import run_multiprogram
from repro.trace.mixes import TABLE_VI_MIXES

EXPERIMENT_ID = "Fig 16"

_SCHEMES = ("gzip", "cable")


def run(scale="default", mixes: Optional[Sequence[str]] = None) -> ExperimentResult:
    preset = resolve_scale(scale)
    mixes = list(mixes or sorted(TABLE_VI_MIXES))
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Destructive multiprogram compression vs single-program",
        headers=["mix", "gzip_norm", "cable_norm"],
        paper_claim=(
            "gzip loses up to ~25% to dictionary pollution; CABLE holds "
            "single-program ratios and gains up to ~35% (MIX5)"
        ),
    )
    norms: Dict[str, List[float]] = {s: [] for s in _SCHEMES}
    for mix in mixes:
        names = TABLE_VI_MIXES[mix]
        row: List = [mix]
        for scheme in _SCHEMES:
            multi = run_multiprogram(names, scheme=scheme, preset=preset)
            per_program = []
            for slot, benchmark in enumerate(names):
                single = cached_memlink(benchmark, scheme, preset).effective_ratio
                per_program.append(multi.per_slot_ratio[slot] / single)
            normalized = arithmetic_mean(per_program)
            norms[scheme].append(normalized)
            row.append(normalized)
        result.rows.append(row)
    result.summary = {
        "gzip_mean_norm": arithmetic_mean(norms["gzip"]),
        "cable_mean_norm": arithmetic_mean(norms["cable"]),
        "gzip_worst": min(norms["gzip"]),
        "cable_best": max(norms["cable"]),
    }
    return result


if __name__ == "__main__":
    print(run().render())
