"""Fig 11 — off-chip link compression normalized to CPACK.

Per benchmark, each scheme's effective compression ratio divided by
CPACK's. The paper's headline from this view: CABLE provides 46.9%
better compression than a system that already deploys CPACK.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, geometric_mean
from repro.experiments.base import (
    ExperimentResult,
    FIGURE_SCHEMES,
    cached_memlink,
)
from repro.trace.profiles import ALL_BENCHMARKS

EXPERIMENT_ID = "Fig 11"


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or ALL_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Off-chip link compression (normalized to CPACK)",
        headers=["benchmark"] + [s for s in FIGURE_SCHEMES if s != "cpack"],
        paper_claim="CABLE averages ~1.47x over a CPACK-equipped system",
    )
    cable_over_cpack = []
    for benchmark in benchmarks:
        cpack = cached_memlink(benchmark, "cpack", scale).effective_ratio
        row = [benchmark]
        for scheme in FIGURE_SCHEMES:
            if scheme == "cpack":
                continue
            ratio = cached_memlink(benchmark, scheme, scale).effective_ratio
            row.append(ratio / cpack)
            if scheme == "cable":
                cable_over_cpack.append(ratio / cpack)
        result.rows.append(row)
    result.summary = {
        "cable_vs_cpack_mean": arithmetic_mean(cable_over_cpack),
        "cable_vs_cpack_geomean": geometric_mean(cable_over_cpack),
        "cable_pct_better": 100.0 * (arithmetic_mean(cable_over_cpack) - 1.0),
    }
    return result


if __name__ == "__main__":
    print(run().render())
