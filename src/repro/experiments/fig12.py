"""Fig 12 — off-chip link compression, raw compression ratios.

Per-benchmark effective ratios for every scheme, with the
zero-dominant (easy) group shown last as the paper does. Headline
claims reproduced in shape: CABLE ≈ 8.2× vs CPACK ≈ 4.5× on average
(~82% better), easy-group benchmarks ≥16×, CABLE loses to gzip only
on a few byte-shift-heavy benchmarks while winning on dealII, tonto,
zeusmp and gobmk.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, geometric_mean, percent_better
from repro.experiments.base import (
    ExperimentResult,
    FIGURE_SCHEMES,
    cached_memlink,
)
from repro.trace.profiles import ALL_BENCHMARKS, ZERO_DOMINANT

EXPERIMENT_ID = "Fig 12"


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or ALL_BENCHMARKS)
    ordered = [b for b in benchmarks if b not in ZERO_DOMINANT] + [
        b for b in benchmarks if b in ZERO_DOMINANT
    ]
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Off-chip link compression (raw compression ratios)",
        headers=["benchmark"] + list(FIGURE_SCHEMES),
        paper_claim=(
            "CABLE 8.2x vs CPACK 4.5x on average (82% better); "
            "zero-dominant group reaches 16x+; CABLE>gzip on dealII/tonto/"
            "zeusmp/gobmk"
        ),
    )
    ratios: Dict[str, Dict[str, float]] = {}
    for benchmark in ordered:
        row = [benchmark + ("*" if benchmark in ZERO_DOMINANT else "")]
        ratios[benchmark] = {}
        for scheme in FIGURE_SCHEMES:
            ratio = cached_memlink(benchmark, scheme, scale).effective_ratio
            ratios[benchmark][scheme] = ratio
            row.append(ratio)
        result.rows.append(row)

    cable = [ratios[b]["cable"] for b in ordered]
    cpack = [ratios[b]["cpack"] for b in ordered]
    gzip_r = [ratios[b]["gzip"] for b in ordered]
    result.summary = {
        "cable_mean": arithmetic_mean(cable),
        "cpack_mean": arithmetic_mean(cpack),
        "gzip_mean": arithmetic_mean(gzip_r),
        "cable_geomean": geometric_mean(cable),
        "cable_pct_better_than_cpack": percent_better(
            arithmetic_mean(cable), arithmetic_mean(cpack)
        ),
        "easy_group_cable_mean": arithmetic_mean(
            ratios[b]["cable"] for b in ordered if b in ZERO_DOMINANT
        )
        if any(b in ZERO_DOMINANT for b in ordered)
        else 0.0,
    }
    return result


def scheme_ratios(scale="default", benchmarks=None) -> Dict[str, Dict[str, float]]:
    """Convenience accessor used by other experiments/tests."""
    benchmarks = list(benchmarks or ALL_BENCHMARKS)
    return {
        b: {
            s: cached_memlink(b, s, scale).effective_ratio for s in FIGURE_SCHEMES
        }
        for b in benchmarks
    }


if __name__ == "__main__":
    print(run().render())
