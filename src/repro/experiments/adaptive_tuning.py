"""Adaptive knob tuning (ROADMAP item 3) — the headline ablation.

The paper tunes CABLE's knobs once, globally; §VI-D's only online
control is the on/off hysteresis switch. This experiment measures what
a per-workload bandit controller (:mod:`repro.tune`) buys over that:
for every sweep benchmark it sweeps the discrete arm space statically
(one full run per arm), then runs the same workload with the UCB1
controller switching arms online and with the §VI-D on/off baseline
wrapped as a two-arm policy.

Columns per workload:

- ``static_best`` / ``static_worst`` — the best and worst effective
  (flit-quantized) ratio any single fixed arm achieves, with the arm
  names. The static sweep is the oracle an offline tuner would need a
  profiling pass per workload to find.
- ``adaptive`` — the UCB1 controller's whole-run ratio, exploration
  cost included.
- ``onoff`` — the §VI-D hysteresis baseline run through the same
  controller harness (arm space {base, off}).
- ``adp_vs_worst`` — adaptive / static_worst, the gated margin: the
  controller must never be worth less than the worst static choice it
  is protecting against.

Two further gates ride in the summary:

- ``serve_silent_corruptions`` — a faulty-serve campaign (uniform wire
  faults, per-session UCB1 controllers) must finish with zero escapes:
  knob switches at epoch boundaries never corrupt served lines.
- ``arms_payload_identical`` — twin-encoder equivalence: for every
  arm, a pair *constructed* at the arm's config and a pair *reconfigured*
  into it via :meth:`~repro.core.encoder.CableLinkPair.apply_config`
  produce byte-identical payload streams on an identical trace.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence

from repro.experiments.base import (
    SWEEP_BENCHMARKS,
    ExperimentResult,
    cached_memlink,
    memlink_config,
    resolve_scale,
)
from repro.sim.memlink import MemLinkSimulation
from repro.tune.plan import KnobArm, TuningPlan, default_arm_space

EXPERIMENT_ID = "Adaptive tuning"

#: Margin of the per-workload gate: the adaptive run must beat the
#: worst static arm by at least this factor (the worst arm is usually
#: ``off`` at ratio 1.0, so this asserts the controller never tunes a
#: compressible workload down to raw).
WORST_MARGIN = 1.02


def _tuning_plan(policy: str, scale) -> TuningPlan:
    """Schedule scaled to the preset so every scale settles ~20 epochs."""
    preset = resolve_scale(scale)
    counted = max(1, int(preset.accesses * (1.0 - 0.25)))
    return TuningPlan(
        policy=policy,
        warmup_accesses=max(32, counted // 12),
        hold_accesses=max(32, counted // 24),
    )


def _static_ratio(benchmark: str, arm: KnobArm, scale) -> float:
    """Effective ratio of one fixed arm held for a whole run."""
    if not arm.enabled:
        # The off arm is the raw link; its effective ratio is 1 by
        # definition and the raw run is already in every figure cache.
        return cached_memlink(benchmark, "raw", scale).effective_ratio
    overrides = arm.config_overrides()
    if not overrides:
        return cached_memlink(benchmark, "cable", scale).effective_ratio
    config = memlink_config(scale)
    config = config.scaled(cable=config.cable.with_overrides(**overrides))
    return MemLinkSimulation(benchmark, config).run().effective_ratio


def _adaptive_run(benchmark: str, policy: str, scale):
    config = memlink_config(scale).scaled(tuning=_tuning_plan(policy, scale))
    return MemLinkSimulation(benchmark, config).run()


def verify_arm_payload_equivalence(
    scale="smoke", benchmark: str = "gcc", arms: Optional[Sequence[KnobArm]] = None
) -> Dict[str, bool]:
    """Twin-encoder check: construct-at-arm ≡ reconfigure-into-arm.

    For each arm, one simulation builds its pair directly at the arm's
    config while its twin builds the base pair and crosses over via
    ``apply_config`` before any traffic; both then replay the identical
    trace. Byte-identical payload streams (and bit-identical totals)
    mean a knob change applied at a safe boundary is indistinguishable
    from having always run that way.
    """
    verdicts: Dict[str, bool] = {}
    for arm in arms if arms is not None else default_arm_space():
        base = memlink_config(scale)
        target = base.cable.with_overrides(**arm.config_overrides())
        native = MemLinkSimulation(benchmark, base.scaled(cable=target))
        crossed = MemLinkSimulation(benchmark, base)
        assert native.cable is not None and crossed.cable is not None
        crossed.cable.apply_config(target)
        native.cable.enabled = arm.enabled
        crossed.cable.enabled = arm.enabled
        for sim in (native, crossed):
            sim.cable.keep_transfers = True
            sim.run()
        a, b = native.cable, crossed.cable
        same = a.totals == b.totals and len(a.transfers) == len(b.transfers)
        if same:
            same = all(
                ra.direction == rb.direction
                and ra.line_addr == rb.line_addr
                and ra.payload == rb.payload
                for ra, rb in zip(a.transfers, b.transfers)
            )
        verdicts[arm.name] = same
    return verdicts


async def _serve_campaign(
    clients: int, accesses: int, benchmark: str, seed: int
) -> Dict[str, object]:
    """Faulty-serve campaign with per-session adaptive controllers."""
    from repro.fault.plan import FaultPlan
    from repro.serve.loadgen import run_loadgen
    from repro.serve.server import LinkService
    from repro.serve.session import ServeConfig

    config = ServeConfig(
        faults=FaultPlan.uniform(0.02, seed=seed),
        max_sessions=max(64, clients),
        tuning=TuningPlan(
            policy="ucb1",
            seed=seed,
            warmup_accesses=max(8, accesses // 4),
            hold_accesses=max(8, accesses // 8),
        ),
    )
    service = LinkService(config)
    report = await run_loadgen(
        clients=clients,
        accesses=accesses,
        benchmark=benchmark,
        seed=seed,
        service=service,
    )
    drain = report.drain_report
    return {
        "completed": report.completed,
        "planned": report.accesses,
        "silent_corruptions": report.silent_corruptions,
        "audit_ok": report.audit_ok,
        "drained_clean": report.drained_clean,
        "tuned_sessions": drain.get("tuned_sessions", 0),
        "tune_epochs": drain.get("tune_epochs", 0),
        "tune_switches": drain.get("tune_switches", 0),
    }


def run(
    scale="default",
    benchmarks: Optional[Sequence[str]] = None,
    serve_clients: int = 4,
    serve_accesses: int = 96,
) -> ExperimentResult:
    benchmarks = list(benchmarks or SWEEP_BENCHMARKS)
    arms = default_arm_space()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Online adaptive tuning vs. static knob choices",
        headers=[
            "workload",
            "static_best",
            "best_arm",
            "adaptive",
            "onoff",
            "static_worst",
            "worst_arm",
            "adp_vs_worst",
        ],
        paper_claim=(
            "Not in the paper: generalizes §VI-D's on/off control to a "
            "bandit over the knob space; adaptive must never lose to "
            "the worst static arm"
        ),
    )
    margins: List[float] = []
    adaptive_ratios: List[float] = []
    best_ratios: List[float] = []
    epochs_total = 0
    for benchmark in benchmarks:
        static = {arm.name: _static_ratio(benchmark, arm, scale) for arm in arms}
        best_arm = max(static, key=lambda name: static[name])
        worst_arm = min(static, key=lambda name: static[name])
        adaptive = _adaptive_run(benchmark, "ucb1", scale)
        onoff = _adaptive_run(benchmark, "onoff", scale)
        assert adaptive.tuning is not None
        epochs_total += int(adaptive.tuning["epochs"])
        margin = adaptive.effective_ratio / max(static[worst_arm], 1e-9)
        margins.append(margin)
        adaptive_ratios.append(adaptive.effective_ratio)
        best_ratios.append(static[best_arm])
        result.rows.append(
            [
                benchmark,
                static[best_arm],
                best_arm,
                adaptive.effective_ratio,
                onoff.effective_ratio,
                static[worst_arm],
                worst_arm,
                margin,
            ]
        )
    serve = asyncio.run(
        _serve_campaign(serve_clients, serve_accesses, benchmarks[0], seed=0xCAB1E)
    )
    equivalence = verify_arm_payload_equivalence("smoke", benchmarks[0], arms)
    result.summary = {
        "workloads": float(len(benchmarks)),
        "mean_adaptive_ratio": sum(adaptive_ratios) / len(adaptive_ratios),
        "mean_static_best_ratio": sum(best_ratios) / len(best_ratios),
        "min_adp_vs_worst": min(margins),
        "tune_epochs_sim": float(epochs_total),
        "serve_completed": float(serve["completed"]),
        "serve_planned": float(serve["planned"]),
        "serve_silent_corruptions": float(serve["silent_corruptions"]),
        "serve_tuned_sessions": float(serve["tuned_sessions"]),
        "serve_tune_epochs": float(serve["tune_epochs"]),
        "arms_payload_identical": float(all(equivalence.values())),
    }
    return result


if __name__ == "__main__":
    print(run().render())
