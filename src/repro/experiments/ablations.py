"""Ablations beyond the paper's own sweeps (DESIGN.md §5).

The paper sweeps hash-table size (Fig 21), data-access count (Fig 22)
and link width (Fig 23); this module ablates the remaining design
choices of §III:

- **Trivial-word threshold** — the 24-bit leading zeros/ones rule of
  Fig 6. Too loose (16) and real values get skipped as trivial; too
  tight (31) and near-zero counters flood the hash table with
  low-entropy signatures.
- **Signatures indexed per line** — the paper's 2 vs 1 and 4. More
  signatures find more matches but raise hash pressure (and hardware
  sync cost).
- **Hash bucket depth** — 2 LineIDs per bucket vs 1 and 4; deeper
  buckets survive collisions but return more junk candidates for the
  same data-access budget.
- **Greedy CBV ranking vs naive top-coverage** — the §III-C selection
  rule against picking the individually-best CBVs (which wastes
  pointers on near-identical references).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import geometric_mean
from repro.core.config import CableConfig
from repro.experiments.base import (
    ExperimentResult,
    SWEEP_BENCHMARKS,
    cached_memlink,
)

EXPERIMENT_ID = "Ablations"

#: (label, CableConfig overrides) per ablation axis.
AXES: Dict[str, List] = {
    "trivial_threshold": [
        ("16b", {"trivial_threshold_bits": 16}),
        ("20b", {"trivial_threshold_bits": 20}),
        ("24b*", {}),
        ("28b", {"trivial_threshold_bits": 28}),
    ],
    "signatures_per_line": [
        ("1", {"signatures_per_line": 1, "signature_offsets": (0,)}),
        ("2*", {}),
        (
            "4",
            {
                "signatures_per_line": 4,
                "signature_offsets": (0, 16, 32, 48),
            },
        ),
    ],
    "bucket_depth": [
        ("1", {"hash_bucket_entries": 1}),
        ("2*", {}),
        ("4", {"hash_bucket_entries": 4}),
    ],
    "ranking": [
        ("greedy*", {}),
        ("top", {"ranking_policy": "top"}),
    ],
}


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    benchmarks = list(benchmarks or SWEEP_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Design-choice ablations (CABLE geomean ratio; * = baseline)",
        headers=["axis", "variant", "cable_geomean"],
        paper_claim=(
            "Baseline choices (24-bit trivial rule, 2 signatures, 2-deep "
            "buckets, greedy ranking) hold up against the alternatives"
        ),
    )
    for axis, variants in AXES.items():
        for label, overrides in variants:
            config = CableConfig(**overrides)
            ratios = [
                cached_memlink(b, "cable", scale, cable=config).effective_ratio
                for b in benchmarks
            ]
            value = geometric_mean(ratios)
            result.rows.append([axis, label, value])
            result.summary[f"{axis}:{label}"] = value
    return result


if __name__ == "__main__":
    print(run().render())
