"""Fig 15 — cooperative multiprogram compression (Single vs Multi4).

Four copies of the same program run SPECrate-style on one link with a
shared cache hierarchy. Copies share data-structure archetypes, so a
dictionary that spans the whole cache (CABLE's) finds cross-copy
similarity and *improves*, while gzip's fixed window gains less (and
both lose on namd, whose data carries little cross-copy similarity).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean
from repro.experiments.base import ExperimentResult, cached_memlink, resolve_scale
from repro.sim.multiprogram import run_multiprogram

EXPERIMENT_ID = "Fig 15"

_DEFAULT_BENCHMARKS = ("gcc", "dealII", "gobmk", "namd", "perlbench", "omnetpp")
_SCHEMES = ("gzip", "cable")


def run(scale="default", benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    preset = resolve_scale(scale)
    benchmarks = list(benchmarks or _DEFAULT_BENCHMARKS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title="Single vs replicated-4 multiprogram compression",
        headers=["benchmark", "gzip_single", "gzip_multi4", "cable_single", "cable_multi4"],
        paper_claim=(
            "CABLE benefits more from cooperative replication than gzip "
            "(bigger similarity window); namd hurts both"
        ),
    )
    gains = {s: [] for s in _SCHEMES}
    for benchmark in benchmarks:
        row: List = [benchmark]
        for scheme in _SCHEMES:
            single = cached_memlink(benchmark, scheme, scale).effective_ratio
            multi = run_multiprogram(
                (benchmark,) * 4,
                scheme=scheme,
                preset=preset,
                replicate=True,
            )
            multi_ratio = multi.overall_ratio
            if scheme == "gzip":
                row.extend([single, multi_ratio])
            else:
                row.extend([single, multi_ratio])
            gains[scheme].append(multi_ratio / single)
        result.rows.append(row)
    result.summary = {
        "cable_mean_gain": arithmetic_mean(gains["cable"]),
        "gzip_mean_gain": arithmetic_mean(gains["gzip"]),
    }
    return result


if __name__ == "__main__":
    print(run().render())
