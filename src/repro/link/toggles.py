"""Bit-toggle accounting (§VI-D).

On links that do not scramble data, dynamic energy and signal
integrity track the number of bit *toggles* — positions that change
value between consecutive flits. Compression reduces the flit count
but raises entropy per flit, so the net effect must be measured, which
is what the paper's 30.2% toggle-reduction claim is about.

This module serializes payloads to real bit streams (token-exact for
every engine), cuts them into flits, and counts transitions.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.compression.base import CompressedBlock
from repro.core.payload import FLAG_BITS, Payload, PayloadKind, REFCOUNT_BITS
from repro.util.bits import BitWriter, bits_for
from repro.util.kernels import count_toggles as _count_toggles_kernel


def flitize(data: bytes, bit_count: int, width_bits: int = 16) -> List[int]:
    """Cut an MSB-first bit stream into zero-padded flits."""
    total = int.from_bytes(data, "big") if data else 0
    stored_bits = len(data) * 8
    # Drop the byte-boundary padding BitWriter added, then pad to flits.
    total >>= max(stored_bits - bit_count, 0)
    flit_count = -(-bit_count // width_bits) if bit_count else 0
    total <<= flit_count * width_bits - bit_count
    flits = []
    for i in range(flit_count):
        shift = (flit_count - 1 - i) * width_bits
        flits.append((total >> shift) & ((1 << width_bits) - 1))
    return flits


def count_toggles(flits: Iterable[int], previous: int = 0) -> int:
    """Transitions between consecutive flits (starting from *previous*).

    Delegates to the shared kernel: vectorized popcount over the XOR of
    consecutive flits when numpy is available, the shared ``popcount32``
    loop otherwise.
    """
    return _count_toggles_kernel(flits, previous)


# ----------------------------------------------------------------------
# Token-exact serializers per engine
# ----------------------------------------------------------------------

def _serialize_cpack(block: CompressedBlock, writer: BitWriter) -> None:
    # Index width recovers from the block's accounting: tokens know
    # their kind; the configured width is embedded in size_bits, so
    # derive it from the largest index seen (defaulting to 4 bits).
    max_index = max(
        (t[1] for t in block.tokens if t[0] in ("mmmm", "mmxx", "mmmx")),
        default=0,
    )
    idx_bits = max(4, bits_for(max_index + 1))
    for token in block.tokens:
        kind = token[0]
        if kind == "zzzz":
            writer.write(0b00, 2)
        elif kind == "xxxx":
            writer.write(0b01, 2)
            writer.write(token[1], 32)
        elif kind == "mmmm":
            writer.write(0b10, 2)
            writer.write(token[1], idx_bits)
        elif kind == "mmxx":
            writer.write(0b1100, 4)
            writer.write(token[1], idx_bits)
            writer.write(token[2], 16)
        elif kind == "zzzx":
            writer.write(0b1101, 4)
            writer.write(token[1], 8)
        elif kind == "mmmx":
            writer.write(0b1110, 4)
            writer.write(token[1], idx_bits)
            writer.write(token[2], 8)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown CPACK token {kind!r}")


def _serialize_lbe(block: CompressedBlock, writer: BitWriter) -> None:
    max_off = max((t[1] for t in block.tokens if t[0] == "copy"), default=0)
    off_bits = max(6, bits_for(max_off + 1))
    for token in block.tokens:
        kind = token[0]
        if kind == "zero":
            writer.write(0b00, 2)
            writer.write(token[1] - 1, 4)
        elif kind == "copy":
            writer.write(0b01, 2)
            writer.write(token[1], off_bits)
            writer.write(token[2] - 1, 4)
        elif kind == "lit":
            writer.write(0b10, 2)
            writer.write(len(token[1]) - 1, 4)
            for word in token[1]:
                writer.write(word, 32)
        elif kind == "byte":
            writer.write(0b11, 2)
            writer.write(len(token[1]) - 1, 4)
            for word in token[1]:
                writer.write(word, 8)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown LBE token {kind!r}")


def _serialize_lzss(block: CompressedBlock, writer: BitWriter) -> None:
    for token in block.tokens:
        if token[0] == "lit":
            writer.write(0, 1)
            writer.write(token[1], 8)
        else:
            writer.write(1, 1)
            writer.write(token[1], 15)
            writer.write(token[2] - 3, 8)


def _serialize_oracle(block: CompressedBlock, writer: BitWriter) -> None:
    max_off = max((t[1] for t in block.tokens if t[0] == "copy"), default=0)
    off_bits = max(1, bits_for(max_off + 1))
    for token in block.tokens:
        if token[0] == "lit":
            writer.write(0, 1)
            writer.write(token[1], 8)
        elif token[0] == "zero":
            writer.write(0b10, 2)
            writer.write(token[1] - 1, 6)
        else:
            writer.write(0b11, 2)
            writer.write(token[1], off_bits)
            writer.write(token[2] - 1, 6)


def _serialize_zero(block: CompressedBlock, writer: BitWriter) -> None:
    word_count, nonzero = block.tokens
    nonzero_map = dict(nonzero)
    for i in range(word_count):
        if i in nonzero_map:
            writer.write(1, 1)
        else:
            writer.write(0, 1)
    for __, value in nonzero:
        writer.write(value, 32)


def _serialize_bdi(block: CompressedBlock, writer: BitWriter) -> None:
    tokens = block.tokens
    layouts = ["zeros", "rep", "b8d1", "b8d2", "b8d4", "b4d1", "b4d2", "b2d1", "raw"]
    writer.write(layouts.index(tokens[0]), 4)
    if tokens[0] == "raw":
        writer.write_bytes(tokens[1])
        return
    if tokens[0] == "zeros":
        writer.write(0, 8)
        return
    if tokens[0] == "rep":
        writer.write(tokens[1] & ((1 << 64) - 1), 64)
        return
    layout, base, mask, deltas, __ = tokens
    delta_bytes = {"b8d1": 1, "b8d2": 2, "b8d4": 4, "b4d1": 1, "b4d2": 2, "b2d1": 1}[layout]
    base_bytes = {"b8d1": 8, "b8d2": 8, "b8d4": 8, "b4d1": 4, "b4d2": 4, "b2d1": 2}[layout]
    writer.write(base & ((1 << (base_bytes * 8)) - 1), base_bytes * 8)
    for use_base in mask:
        writer.write(1 if use_base else 0, 1)
    for delta in deltas:
        writer.write(delta & ((1 << (delta_bytes * 8)) - 1), delta_bytes * 8)


_SERIALIZERS = {
    "cpack": _serialize_cpack,
    "lbe": _serialize_lbe,
    "gzip": _serialize_lzss,
    "oracle": _serialize_oracle,
    "zero": _serialize_zero,
    "bdi": _serialize_bdi,
}


def _serializer_for(algorithm: str):
    for prefix, fn in _SERIALIZERS.items():
        if algorithm.startswith(prefix):
            return fn
    raise ValueError(f"no serializer for algorithm {algorithm!r}")


def payload_bitstream(payload: Payload) -> BitWriter:
    """Serialize a payload (header, pointers, DIFF) to real bits."""
    writer = BitWriter()
    if payload.kind is PayloadKind.UNCOMPRESSED:
        writer.write(0, FLAG_BITS)
        writer.write_bytes(payload.raw)
        return writer
    writer.write(1, FLAG_BITS)
    writer.write(len(payload.remote_lids), REFCOUNT_BITS)
    for lid in payload.remote_lids:
        writer.write(int(lid) & ((1 << payload.remotelid_bits) - 1), payload.remotelid_bits)
    _serializer_for(payload.block.algorithm)(payload.block, writer)
    return writer


class ToggleCounter:
    """Running toggle count over one link direction."""

    def __init__(self, width_bits: int = 16) -> None:
        self.width_bits = width_bits
        self._last_flit = 0
        self.toggles = 0
        self.flits = 0

    def record_bits(self, writer: BitWriter) -> None:
        flits = flitize(writer.getvalue(), writer.bit_count, self.width_bits)
        self.toggles += count_toggles(flits, self._last_flit)
        self.flits += len(flits)
        if flits:
            self._last_flit = flits[-1]

    def record_payload(self, payload: Payload) -> None:
        self.record_bits(payload_bitstream(payload))

    def record_raw(self, line: bytes) -> None:
        writer = BitWriter()
        writer.write_bytes(line)
        self.record_bits(writer)
