"""Link-recovery protocol: CRC frames, NACK/retransmit, raw fallback
and a degradation circuit breaker.

This layer turns the trust-everything synchronous pipe of
:class:`~repro.core.encoder.CableLinkPair` into a protocol that
survives a lossy wire and sabotaged metadata:

1. every payload crosses the link as real bits inside a CRC-guarded,
   sequence-tagged frame (:func:`repro.link.wire.encode_frame`);
2. any :class:`~repro.core.errors.WireDecodeError` at the receiver is
   a **NACK** — the sender retransmits the same frame, up to
   ``max_retries`` times;
3. a :class:`~repro.core.errors.StaleReferenceError` (the §IV-A
   in-flight-eviction race, or a stale WMT translation) switches the
   sender to **retransmit-as-RAW**: the line goes again uncompressed,
   with no references to go stale. This closes the race *inside the
   protocol* — no cooperation from tests or callers needed;
4. a per-link **circuit breaker** watches the recoverable-failure rate
   over a sliding window; past the threshold it trips, degrading the
   link to uncompressed transmission (which cannot suffer decode
   failures) for a cooldown, optionally resynchronizing WMT/hash state
   through the §III-F auditor, then re-arms.

Exhausting the raw budget raises
:class:`~repro.core.errors.LinkRecoveryError` — the one *unrecoverable*
outcome, and it is loud. Nothing in this layer can deliver wrong bytes
silently short of a CRC collision, whose probability per corrupted
frame is 2^-crc_bits.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Callable, Dict, Optional

from repro.core.errors import (
    CrcMismatchError,
    LinkRecoveryError,
    SnapshotCorruptionError,
    StaleReferenceError,
    WireDecodeError,
)
from repro.core.payload import Payload, PayloadKind
from repro.fault.injectors import (
    ChannelFaultInjector,
    StateFaultInjector,
    WireFaultInjector,
)
from repro.fault.plan import FaultPlan, RecoveryPolicy
from repro.cache.setassoc import LineId
from repro.link.wire import (
    EPOCH_KIND_EPOCH,
    EPOCH_KIND_HELLO,
    DecodedPayload,
    WireFormat,
    decode_epoch_frame,
    decode_frame,
    encode_epoch_frame,
    encode_frame,
)
from repro.obs.registry import METRICS
from repro.obs.tracer import trace


class LinkHealth:
    """Per-link health counters, flowing into metrics/experiments.

    The per-link ``counts`` dict stays the source of truth (golden
    outputs and the resilience tables read it); when observability is
    on, every bump is mirrored into the process registry as a
    ``link.<field>`` counter so campaigns, benchmarks and experiments
    all report through one scrape surface.
    """

    FIELDS = (
        "transfers",
        "deliveries",
        "crc_failures",
        "decode_errors",
        "seq_rejects",
        "nacks",
        "retries",
        "raw_fallbacks",
        "breaker_trips",
        "breaker_recoveries",
        "breaker_raw_transfers",
        "resyncs",
        "resync_repairs",
        "link_failures",
        "overhead_bits",
        "silent_corruptions",
        # -- crash recovery (repro.state + epoch resync) ----------------
        "endpoint_crashes",
        "snapshot_restores",
        "snapshot_corruptions_detected",
        "journal_replays",
        "journal_records_replayed",
        "full_rebuilds",
        "handshake_bits",
        "replay_traffic_bits",
        "rebuild_traffic_bits",
        "resync_traffic_bits",
        "recovery_transfers",
        # -- replication / failover (repro.replica) ---------------------
        "failovers",
        "hot_promotions",
        "warm_promotions",
        "replication_lost_records",
    )

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {field: 0 for field in self.FIELDS}
        self._obs = METRICS
        self._mirrors = {
            field: METRICS.counter(f"link.{field}") for field in self.FIELDS
        }

    def bump(self, field: str, amount: int = 1) -> None:
        self.counts[field] += amount
        if self._obs.enabled:
            self._mirrors[field].inc(amount)

    def __getitem__(self, field: str) -> int:
        return self.counts[field]

    def as_dict(self) -> Dict[str, int]:
        return dict(self.counts)


class CircuitBreaker:
    """Sliding-window failure-rate breaker with cooldown re-arm.

    ``closed`` → compressed transmission, outcomes recorded; when the
    failure rate over the last ``breaker_window`` transfers reaches
    ``breaker_threshold`` (with at least ``breaker_min_samples``
    observations) the breaker **trips** ``open``: the link degrades to
    uncompressed payloads until ``breaker_cooldown`` has elapsed on the
    breaker's clock, then re-arms with a cleared window.

    The cooldown is measured against an injectable monotonic *clock*
    (``clock()`` → int). The default advances by one per observed
    transfer (``record``/``tick_open``), giving the classic
    "cooldown counted in transfers" behaviour; a simulation can inject
    its cycle counter instead. No wall-clock is ever read, so breaker
    timing is deterministic under test.
    """

    def __init__(
        self,
        policy: RecoveryPolicy,
        clock: Optional[Callable[[], int]] = None,
    ) -> None:
        self.policy = policy
        self._window: deque = deque(maxlen=policy.breaker_window)
        self._events = 0
        self.clock: Callable[[], int] = (
            clock if clock is not None else self._event_clock
        )
        self._opened_at = 0
        self.is_open = False
        self.trips = 0
        self.recoveries = 0
        self.last_open_duration = 0

    def _event_clock(self) -> int:
        return self._events

    @property
    def failure_rate(self) -> float:
        if not self._window:
            return 0.0
        return sum(1 for ok in self._window if not ok) / len(self._window)

    def record(self, ok: bool) -> bool:
        """Record one closed-state transfer outcome; True if it tripped."""
        self._events += 1
        self._window.append(ok)
        if (
            len(self._window) >= self.policy.breaker_min_samples
            and self.failure_rate >= self.policy.breaker_threshold
        ):
            self.is_open = True
            self._opened_at = self.clock()
            self._window.clear()
            self.trips += 1
            return True
        return False

    def tick_open(self) -> bool:
        """Observe one open-state (raw) transfer; True if it re-armed."""
        self._events += 1
        elapsed = self.clock() - self._opened_at
        if elapsed >= self.policy.breaker_cooldown:
            self.is_open = False
            self.recoveries += 1
            self.last_open_duration = elapsed
            return True
        return False

    # ------------------------------------------------------------------
    # Durability (snapshot / restore, repro.state) — the breaker is
    # home-endpoint state: losing it across a crash would silently
    # reopen a degraded link at full compression.
    # ------------------------------------------------------------------

    _SNAP_HEADER = struct.Struct("<BIIQQQH")
    # is_open, trips, recoveries, events, opened_at, last_open, window

    def snapshot_state(self) -> bytes:
        return self._SNAP_HEADER.pack(
            1 if self.is_open else 0,
            self.trips,
            self.recoveries,
            self._events,
            self._opened_at,
            self.last_open_duration,
            len(self._window),
        ) + bytes(1 if ok else 0 for ok in self._window)

    def restore_state(self, data: bytes) -> None:
        try:
            (
                is_open,
                trips,
                recoveries,
                events,
                opened_at,
                last_open,
                window_len,
            ) = self._SNAP_HEADER.unpack_from(data, 0)
        except struct.error as exc:
            raise SnapshotCorruptionError(
                f"breaker snapshot unparseable: {exc}"
            ) from exc
        if window_len > self.policy.breaker_window:
            raise SnapshotCorruptionError(
                f"breaker snapshot window {window_len} exceeds policy "
                f"{self.policy.breaker_window}"
            )
        if len(data) != self._SNAP_HEADER.size + window_len:
            raise SnapshotCorruptionError(
                f"breaker snapshot is {len(data)} bytes, expected "
                f"{self._SNAP_HEADER.size + window_len}"
            )
        window = data[self._SNAP_HEADER.size :]
        self.is_open = bool(is_open)
        self.trips = trips
        self.recoveries = recoveries
        self._events = events
        self._opened_at = opened_at
        self.last_open_duration = last_open
        self._window.clear()
        self._window.extend(bool(b) for b in window)

    def reset_state(self) -> None:
        """Cold state (endpoint crash, before restore)."""
        self._window.clear()
        self._events = 0
        self._opened_at = 0
        self.is_open = False
        self.trips = 0
        self.recoveries = 0
        self.last_open_duration = 0


@dataclass
class Delivery:
    """Outcome of one reliable transfer."""

    data: bytes
    #: The payload form that finally got through (raw after fallback).
    payload: Payload
    #: Frames put on the wire (1 = clean first try).
    attempts: int
    #: Wire bits beyond the first frame's payload bits: framing
    #: (seq+crc) plus every retransmitted frame in full.
    overhead_bits: int
    #: True when any NACK/drop occurred (feeds the circuit breaker).
    degraded: bool


class ReliableLink:
    """Frame/transmit/decode with NACK-retransmit and raw fallback."""

    def __init__(
        self,
        policy: RecoveryPolicy,
        fmt: WireFormat,
        engine_name: str,
        health: LinkHealth,
        wire_faults: Optional[WireFaultInjector] = None,
        channel_faults: Optional[ChannelFaultInjector] = None,
        state_faults: Optional[StateFaultInjector] = None,
    ) -> None:
        self.policy = policy
        self.fmt = fmt
        self.engine_name = engine_name
        self.health = health
        self.wire_faults = wire_faults
        self.channel_faults = channel_faults
        self.state_faults = state_faults
        self._seq: Dict[str, int] = {}
        self._last_frame: Dict[str, tuple] = {}
        self._obs = METRICS
        self._stage_deliver = METRICS.stage("link.deliver")
        self._stage_retransmit = METRICS.stage("link.retransmit")

    # ------------------------------------------------------------------

    def _rebuild(self, decoded: DecodedPayload, sent: Payload) -> Payload:
        """Lift wire-decoded bits back into a decodable Payload.

        ``ref_addrs`` is model metadata (hardware gets the equivalent
        guarantee from the EvictSeq protocol, see
        :class:`~repro.core.payload.Payload`), so it is carried from
        the sender's payload rather than the wire — but only when the
        wire agrees about which references are in play.
        """
        if decoded.kind is PayloadKind.UNCOMPRESSED:
            return Payload(
                kind=PayloadKind.UNCOMPRESSED,
                line_addr=sent.line_addr,
                line_bytes=self.fmt.line_bytes,
                raw=decoded.raw,
                remotelid_bits=self.fmt.remotelid_bits,
            )
        ref_addrs = (
            sent.ref_addrs
            if decoded.remote_lids == sent.remote_lids
            else ()
        )
        return Payload(
            kind=decoded.kind,
            line_addr=sent.line_addr,
            line_bytes=self.fmt.line_bytes,
            remote_lids=decoded.remote_lids,
            block=decoded.block,
            remotelid_bits=self.fmt.remotelid_bits,
            ref_addrs=ref_addrs,
        )

    def deliver(
        self,
        direction: str,
        payload: Payload,
        decode_fn: Callable[[Payload], bytes],
        make_raw: Callable[[], Payload],
    ) -> Delivery:
        """Transmit *payload* until it decodes, falling back to raw.

        *decode_fn* reconstructs the line at the receiving endpoint;
        *make_raw* builds the uncompressed fallback payload from the
        sender's copy of the line.
        """
        policy = self.policy
        health = self.health
        self.health.bump("transfers")
        obs_enabled = self._obs.enabled
        if obs_enabled:
            t0 = perf_counter_ns()
        current = payload
        raw_mode = current.kind is PayloadKind.UNCOMPRESSED
        budget = policy.max_raw_retries if raw_mode else policy.max_retries
        attempts = 0
        overhead_bits = 0
        degraded = False

        def consume_budget() -> None:
            nonlocal budget, raw_mode, current
            budget -= 1
            if budget >= 0:
                return
            if raw_mode:
                health.bump("link_failures")
                raise LinkRecoveryError(
                    f"{direction} of line {payload.line_addr:#x} undeliverable: "
                    f"retries and raw fallback exhausted"
                )
            self._fall_back_to_raw(make_raw)
            raw_mode = True
            current = self._raw_payload
            budget = policy.max_raw_retries

        while True:
            seq = self._seq.get(direction, 0)
            writer = encode_frame(
                current,
                self.fmt,
                self.engine_name,
                seq=seq,
                crc_bits=policy.crc_bits,
                seq_bits=policy.seq_bits,
            )
            frame, frame_bits = writer.getvalue(), writer.bit_count
            attempts += 1
            if attempts == 1:
                overhead_bits += policy.seq_bits + policy.crc_bits
            else:
                health.bump("retries")
                overhead_bits += frame_bits

            fate = (
                self.channel_faults.decide() if self.channel_faults else None
            )
            delayed = fate == "delay"
            if self.state_faults is not None:
                # Mid-flight metadata faults: the §IV-A window is open
                # while this frame is on the wire (wider when delayed).
                self.state_faults.perturb(inflight=current, delayed=delayed)
            if fate == "drop":
                # The frame vanishes; the sender's timeout retransmits.
                degraded = True
                consume_budget()
                continue
            if fate == "reorder" and direction in self._last_frame:
                # A stale copy of the previous frame overtakes this
                # one; the receiver rejects it by sequence tag.
                stale_data, stale_bits = self._last_frame[direction]
                try:
                    decode_frame(
                        stale_data,
                        stale_bits,
                        self.engine_name,
                        self.fmt,
                        crc_bits=policy.crc_bits,
                        seq_bits=policy.seq_bits,
                        expected_seq=seq,
                    )
                except WireDecodeError:
                    health.bump("seq_rejects")

            rx_data, rx_bits = frame, frame_bits
            if self.wire_faults is not None:
                rx_data, rx_bits = self.wire_faults.corrupt(frame, frame_bits)
            try:
                __, decoded = decode_frame(
                    rx_data,
                    rx_bits,
                    self.engine_name,
                    self.fmt,
                    crc_bits=policy.crc_bits,
                    seq_bits=policy.seq_bits,
                    expected_seq=seq,
                )
                data = decode_fn(self._rebuild(decoded, current))
            except WireDecodeError as exc:
                degraded = True
                health.bump("nacks")
                health.bump(
                    "crc_failures"
                    if isinstance(exc, CrcMismatchError)
                    else "decode_errors"
                )
                consume_budget()
                continue
            except StaleReferenceError:
                # §IV-A: a reference is gone (eviction buffer included)
                # or a WMT translation went stale. NACK, then resend
                # the line raw — the fallback cannot go stale.
                degraded = True
                health.bump("nacks")
                health.bump("decode_errors")
                if not raw_mode:
                    self._fall_back_to_raw(make_raw)
                    raw_mode = True
                    current = self._raw_payload
                    budget = policy.max_raw_retries
                else:
                    consume_budget()
                continue

            self._last_frame[direction] = (frame, frame_bits)
            self._seq[direction] = (seq + 1) % (1 << policy.seq_bits)
            health.bump("deliveries")
            health.bump("overhead_bits", overhead_bits)
            if obs_enabled:
                elapsed = perf_counter_ns() - t0
                self._stage_deliver.observe(elapsed)
                if attempts > 1:
                    # Degraded deliveries get their own distribution so
                    # retransmit latency is visible next to the clean
                    # path, not averaged into it.
                    self._stage_retransmit.observe(elapsed)
            return Delivery(
                data=data,
                payload=current,
                attempts=attempts,
                overhead_bits=overhead_bits,
                degraded=degraded,
            )

    def _fall_back_to_raw(self, make_raw: Callable[[], Payload]) -> None:
        self.health.bump("raw_fallbacks")
        self._raw_payload = make_raw()


class RecoveryLayer:
    """Everything one CableLinkPair needs for lossy-link operation."""

    def __init__(
        self,
        policy: RecoveryPolicy,
        fmt: WireFormat,
        engine_name: str,
        faults: Optional[FaultPlan] = None,
        breaker_clock: Optional[Callable[[], int]] = None,
    ) -> None:
        self.policy = policy
        self.health = LinkHealth()
        self.breaker = CircuitBreaker(policy, clock=breaker_clock)
        wire_inj = channel_inj = None
        self.state_faults: Optional[StateFaultInjector] = None
        if faults is not None and faults.any_faults:
            wire_inj = WireFaultInjector(faults)
            channel_inj = ChannelFaultInjector(faults)
            self.state_faults = StateFaultInjector(faults)
        self.wire_faults = wire_inj
        self.channel_faults = channel_inj
        self.link = ReliableLink(
            policy,
            fmt,
            engine_name,
            self.health,
            wire_faults=wire_inj,
            channel_faults=channel_inj,
            state_faults=self.state_faults,
        )

    def bind(self, pair) -> None:
        if self.state_faults is not None:
            self.state_faults.bind(pair)

    @property
    def faults_injected(self) -> int:
        total = 0
        for injector in (self.wire_faults, self.channel_faults, self.state_faults):
            if injector is not None:
                total += injector.faults_injected
        return total

    def fault_stats(self) -> Dict[str, int]:
        stats: Dict[str, int] = {}
        for injector in (self.wire_faults, self.channel_faults, self.state_faults):
            if injector is not None:
                stats.update(injector.stats)
        return stats


# ======================================================================
# Epoch-based crash resynchronization
# ======================================================================


class EpochResync:
    """The reconnect handshake after an endpoint restart.

    The restarted endpoint sends a HELLO frame carrying the epoch and
    journal length its restore reached; the surviving peer answers
    with an EPOCH frame carrying the progress it last observed (every
    journaled op rode a delivered frame, so the peer's view *is* the
    pre-crash truth). The journal-replay restore is trusted only when
    the two agree exactly **and** the restore itself reported
    completeness — any mismatch (lost journal tail, poisoned journal,
    epoch gap past ``max_epoch_gap``) degrades to the incremental
    audit-rebuild path, where every entry is re-verified against data
    before it can back a DIFF.

    Both handshake frames are real encoded bits (CRC-guarded, see
    :func:`repro.link.wire.encode_epoch_frame`) and their cost is
    charged to the link's recovery-traffic counters.
    """

    def __init__(self, policy: RecoveryPolicy, health: LinkHealth) -> None:
        self.policy = policy
        self.health = health

    def reconnect(self, restored, expected) -> str:
        """Run the handshake; returns ``"replay"`` or ``"rebuild"``.

        *restored* is the :class:`repro.state.manager.RestoreResult`
        plus the manager's post-restore progress (``(epoch, records)``
        via ``manager.expected_progress()``); *expected* is the
        progress the surviving peer last observed.
        """
        with trace("link.epoch_handshake"):
            return self._reconnect(restored, expected)

    def _reconnect(self, restored, expected) -> str:
        manager_progress, result = restored
        policy = self.policy
        hello = encode_epoch_frame(
            EPOCH_KIND_HELLO,
            manager_progress[0],
            manager_progress[1],
            result.complete,
            policy.crc_bits,
            policy.seq_bits,
        )
        reply = encode_epoch_frame(
            EPOCH_KIND_EPOCH,
            expected[0],
            expected[1],
            True,
            policy.crc_bits,
            policy.seq_bits,
        )
        # Model the receive side of both frames (exercises the codec;
        # a corrupted handshake would surface here as a loud error).
        for writer in (hello, reply):
            decode_epoch_frame(
                writer.getvalue(),
                writer.bit_count,
                policy.crc_bits,
                policy.seq_bits,
            )
        handshake = hello.bit_count + reply.bit_count
        health = self.health
        health.bump("handshake_bits", handshake)
        health.bump("resync_traffic_bits", handshake)
        health.bump("snapshot_restores")
        health.bump("snapshot_corruptions_detected", result.corrupt_skipped)
        if result.complete and manager_progress == expected:
            health.bump("journal_replays")
            health.bump("journal_records_replayed", result.records_replayed)
            health.bump("replay_traffic_bits", result.replay_bits)
            health.bump("resync_traffic_bits", result.replay_bits)
            return "replay"
        health.bump("full_rebuilds")
        return "rebuild"


class ResyncSession:
    """Incremental ground-truth rebuild of home-side metadata.

    Walks the remote cache ``chunk_sets`` sets at a time — one chunk
    per live transfer, so recovery interleaves with traffic instead of
    stalling the link. For every resident remote line the home cache
    is probed for the same address; a SHARED pair is byte-verified
    (its data crosses the link, charged to ``rebuild_traffic_bits``)
    before the WMT entry is installed and its index-time signatures
    re-inserted on both sides. Entries the walk has not reached yet
    simply are not referencable — compression loss, never corruption.

    The session operates on a :class:`~repro.core.encoder.CableLinkPair`
    duck-typed (this module cannot import it — layering).
    """

    def __init__(self, pair, health: LinkHealth, chunk_sets: int) -> None:
        self.pair = pair
        self.health = health
        self.chunk_sets = max(1, chunk_sets)
        remote_geometry = pair.pair.remote.geometry
        self.total_sets = remote_geometry.sets
        self._way_bits = remote_geometry.way_bits
        self._ways = remote_geometry.ways
        self._line_bits = remote_geometry.line_bytes * 8
        self.next_set = 0
        self.done = False
        self.verified_lines = 0
        self.steps = 0

    def step(self) -> bool:
        """Process one chunk; returns True when the walk completed."""
        if self.done:
            return True
        with trace("link.resync.step"):
            return self._step()

    def _step(self) -> bool:
        self.steps += 1
        self.health.bump("recovery_transfers")
        pair = self.pair
        encoder = pair.home_encoder
        decoder = pair.remote_decoder
        wmt = encoder.wmt
        home, remote = pair.pair.home, pair.pair.remote
        end = min(self.next_set + self.chunk_sets, self.total_sets)
        for set_index in range(self.next_set, end):
            for way in range(self._ways):
                remote_lid = LineId.pack(set_index, way, self._way_bits)
                line = remote.read_by_lineid(remote_lid)
                if line is None:
                    if wmt.home_lid_for(remote_lid) is not None:
                        wmt.invalidate_remote(remote_lid)
                    continue
                hit = home.lookup(line.tag, touch=False)
                if hit is None:
                    continue  # I4 hole; never advertise it
                home_way, home_line = hit
                home_lid = home.lineid(home.index_of(line.tag), home_way)
                usable = (
                    home_line.state is not None
                    and home_line.state.usable_as_reference
                )
                if usable:
                    # Byte-verify before trusting: the line's data is
                    # shipped across for comparison.
                    self.health.bump("rebuild_traffic_bits", self._line_bits)
                    self.health.bump("resync_traffic_bits", self._line_bits)
                    if home_line.data != line.data:
                        continue  # divergent — not reference-safe
                    self.verified_lines += 1
                wmt.install(home_lid, remote_lid)
                if usable:
                    for signature in encoder.extractor.index_signatures(
                        line.data
                    ):
                        encoder.hash_table.insert(signature, home_lid)
                        decoder.hash_table.insert(signature, remote_lid)
        self.next_set = end
        if self.next_set >= self.total_sets:
            self.done = True
        return self.done
