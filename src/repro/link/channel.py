"""Off-chip link model (Table IV).

The baseline link is 16 bits wide at 9.6GHz (19.2GB/s), modelled after
Intel QPI / AMD HyperTransport. Payloads are carried in whole flits,
so a 64-byte line needs 32 flits raw, and the maximum effective
compression is 32× regardless of how small the DIFF gets — the cap
visible across the paper's figures.

Fig 23 additionally evaluates wider links, where left-over bits in the
last flit waste more bandwidth, and a *packed* transport that
amortizes that waste by concatenating transfers with a 6-bit length
prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Length prefix used by the packed transport (§VI-E: "a 6-bit value
#: specifying the length in bytes of each compressed data").
PACKED_LENGTH_BITS = 6


@dataclass(frozen=True)
class LinkModel:
    """A point-to-point off-chip link."""

    width_bits: int = 16
    frequency_hz: float = 9.6e9
    setup_latency_ns: float = 20.0

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.width_bits / 8 * self.frequency_hz

    def flits_for(self, payload_bits: int) -> int:
        """Whole flits needed for a payload."""
        if payload_bits <= 0:
            return 0
        return -(-payload_bits // self.width_bits)

    def wire_bits_for(self, payload_bits: int) -> int:
        """Bits actually occupied on the wire, padding included."""
        return self.flits_for(payload_bits) * self.width_bits

    def effective_ratio(self, raw_bits: int, payload_bits: int) -> float:
        """Effective compression ratio after flit quantization."""
        wire = self.wire_bits_for(payload_bits)
        if wire == 0:
            return float("inf")
        return self.wire_bits_for(raw_bits) / wire

    def transfer_cycles(self, payload_bits: int) -> int:
        return self.flits_for(payload_bits)

    def transfer_time_s(self, payload_bits: int) -> float:
        return self.transfer_cycles(payload_bits) / self.frequency_hz


@dataclass
class LinkStats:
    """Accumulated traffic over one link direction."""

    link: LinkModel = field(default_factory=LinkModel)
    transfers: int = 0
    payload_bits: int = 0
    raw_bits: int = 0
    flits: int = 0
    #: Recovery-protocol bits beyond the payload itself: framing
    #: (sequence tag + CRC) and every retransmitted frame. Crosses the
    #: wire as its own flits (retransmissions are separate frames).
    overhead_bits: int = 0

    def record(
        self, raw_bits: int, payload_bits: int, overhead_bits: int = 0
    ) -> None:
        self.transfers += 1
        self.raw_bits += raw_bits
        self.payload_bits += payload_bits
        self.flits += self.link.flits_for(payload_bits)
        if overhead_bits:
            self.record_overhead(overhead_bits)

    def record_overhead(self, overhead_bits: int) -> None:
        """Account recovery overhead (frame headers, retransmissions)."""
        self.overhead_bits += overhead_bits
        self.flits += self.link.flits_for(overhead_bits)

    @property
    def goodput_ratio(self) -> float:
        """Fraction of transmitted bits that were payload."""
        total = self.payload_bits + self.overhead_bits
        if total == 0:
            return 1.0
        return self.payload_bits / total

    @property
    def wire_bits(self) -> int:
        return self.flits * self.link.width_bits

    @property
    def effective_ratio(self) -> float:
        """Effective bandwidth gain: raw wire bits / compressed wire bits.

        Raw traffic is flit-quantized too; lines are uniform in every
        stream this model sees, so quantizing the per-transfer average
        is exact.
        """
        if self.wire_bits == 0 or self.transfers == 0:
            return 1.0
        per_line = self.raw_bits // self.transfers
        raw_wire = self.link.wire_bits_for(per_line) * self.transfers
        return raw_wire / self.wire_bits


class PackedTransport:
    """Packs multiple payloads back-to-back with 6-bit length prefixes.

    Instead of padding every payload to a flit boundary, payloads are
    concatenated bit-contiguously, each preceded by its length in
    bytes, and the stream is cut into flits. This recovers most of the
    waste on wide links (Fig 23's "64-bit Packed" series).
    """

    def __init__(self, link: LinkModel) -> None:
        self.link = link
        self._bit_cursor = 0
        self.transfers = 0
        self.payload_bits = 0

    def record(self, payload_bits: int) -> None:
        self.transfers += 1
        self.payload_bits += payload_bits
        self._bit_cursor += PACKED_LENGTH_BITS + payload_bits

    @property
    def flits(self) -> int:
        return self.link.flits_for(self._bit_cursor)

    @property
    def wire_bits(self) -> int:
        return self.flits * self.link.width_bits
