"""Bit-exact wire codec for CABLE payloads.

:mod:`repro.link.toggles` serializes payloads for toggle statistics;
this module goes further: every engine's token stream has an *exact*
bit-level encoder **and parser**, so a payload can be flattened to
real bits and reconstructed on the far side with nothing but the bits,
the link's negotiated configuration and the receiver's cache — the
full production path.

Field widths must be derivable by the receiver, so they depend only on
negotiated configuration plus on-wire fields (the 2-bit reference
count determines the temporary-dictionary size and hence pointer
widths), never on payload content.

Layout (§III-E): ``flag(1)`` — 0 = raw line follows; 1 = compressed:
``refcount(2)``, ``refcount × RemoteLID``, then the engine-specific
DIFF. The ORACLE engine is a hybrid (exact DP or LBE, whichever is
smaller), so its DIFF starts with one discriminator bit.

Decode paths raise the typed hierarchy of :mod:`repro.core.errors`
instead of bare ``ValueError``: a truncated stream is
:class:`~repro.core.errors.TruncatedPayloadError`, impossible tokens
are :class:`~repro.core.errors.CorruptPayloadError` — both subclasses
of :class:`~repro.core.errors.WireDecodeError`, so the recovery layer
can NACK wire corruption while genuine programming bugs still surface
as ordinary exceptions.

For lossy links, :func:`encode_frame`/:func:`decode_frame` wrap the
payload in a link-layer frame — ``seq(4) | payload | crc(8|16)`` —
whose CRC detects every single-bit flip and whose sequence tag rejects
reordered/replayed frames (see :mod:`repro.link.recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter_ns
from typing import List, Optional, Tuple

from repro.cache.setassoc import LineId
from repro.compression.base import CompressedBlock
from repro.core.errors import (
    CorruptPayloadError,
    CrcMismatchError,
    SequenceError,
    TruncatedPayloadError,
)
from repro.core.payload import FLAG_BITS, Payload, PayloadKind, REFCOUNT_BITS
from repro.obs.registry import METRICS
from repro.util.bits import BitReader, BitWriter, bits_for
from repro.util.words import WORD_BYTES

# Pre-bound wire-framing stage histograms (see repro.obs.registry).
_STAGE_FRAME_ENCODE = METRICS.stage("wire.frame_encode")
_STAGE_FRAME_DECODE = METRICS.stage("wire.frame_decode")


@dataclass(frozen=True)
class WireFormat:
    """Link-negotiated constants both endpoints share."""

    line_bytes: int = 64
    remotelid_bits: int = 17
    #: CPACK dictionary entries (per-engine config, negotiated).
    cpack_entries: int = 16
    #: LBE stream-window bytes for refcount-0 payloads. CABLE's
    #: no-reference path compresses with an *empty* temporary window
    #: (0, the default); a stream-LBE deployment would negotiate its
    #: persistent window size here (e.g. 256).
    lbe_window_bytes: int = 0

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // WORD_BYTES

    # -- width derivations (§: widths must be config+header driven) ----

    def lbe_offset_bits(self, reference_count: int) -> int:
        if reference_count:
            window = max(reference_count * self.line_bytes, WORD_BYTES)
        else:
            window = max(self.lbe_window_bytes, WORD_BYTES)
        return bits_for(window // WORD_BYTES + self.words_per_line)

    def lbe_reference_offset_bits(self, reference_count: int) -> int:
        window = max(reference_count * self.line_bytes, WORD_BYTES)
        return bits_for(window // WORD_BYTES + self.words_per_line)

    def cpack_index_bits(self, reference_count: int) -> int:
        if reference_count:
            capacity = max(
                self.cpack_entries, reference_count * self.words_per_line
            )
        else:
            capacity = self.cpack_entries
        return bits_for(capacity)

    def oracle_offset_bits(self, reference_count: int) -> int:
        return bits_for(max(reference_count * self.line_bytes, 1))


# ======================================================================
# Per-engine token codecs: (tokens, writer, widths) and the inverse
# ======================================================================

# ---------------------------------------------------------------- LBE

def _lbe_encode(tokens, writer: BitWriter, off_bits: int) -> None:
    for token in tokens:
        kind = token[0]
        if kind == "zero":
            writer.write(0b00, 2)
            writer.write(token[1] - 1, 4)
        elif kind == "copy":
            writer.write(0b01, 2)
            writer.write(token[1], off_bits)
            writer.write(token[2] - 1, 4)
        elif kind == "lit":
            writer.write(0b10, 2)
            writer.write(len(token[1]) - 1, 4)
            for word in token[1]:
                writer.write(word, 32)
        elif kind == "byte":
            writer.write(0b11, 2)
            writer.write(len(token[1]) - 1, 4)
            for word in token[1]:
                writer.write(word, 8)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown LBE token {kind!r}")


def _lbe_decode(reader: BitReader, off_bits: int, words_per_line: int):
    tokens: List[Tuple] = []
    produced = 0
    while produced < words_per_line:
        op = reader.read(2)
        if op == 0b00:
            length = reader.read(4) + 1
            tokens.append(("zero", length))
            produced += length
        elif op == 0b01:
            offset = reader.read(off_bits)
            length = reader.read(4) + 1
            tokens.append(("copy", offset, length))
            produced += length
        elif op == 0b10:
            count = reader.read(4) + 1
            tokens.append(("lit", tuple(reader.read(32) for _ in range(count))))
            produced += count
        else:
            count = reader.read(4) + 1
            tokens.append(("byte", tuple(reader.read(8) for _ in range(count))))
            produced += count
    if produced != words_per_line:
        raise CorruptPayloadError(
            f"LBE stream produced {produced} words for a {words_per_line}-word line"
        )
    return tokens


# -------------------------------------------------------------- CPACK

def _cpack_encode(tokens, writer: BitWriter, idx_bits: int) -> None:
    for token in tokens:
        kind = token[0]
        if kind == "zzzz":
            writer.write(0b00, 2)
        elif kind == "xxxx":
            writer.write(0b01, 2)
            writer.write(token[1], 32)
        elif kind == "mmmm":
            writer.write(0b10, 2)
            writer.write(token[1], idx_bits)
        elif kind == "mmxx":
            writer.write(0b1100, 4)
            writer.write(token[1], idx_bits)
            writer.write(token[2], 16)
        elif kind == "zzzx":
            writer.write(0b1101, 4)
            writer.write(token[1], 8)
        elif kind == "mmmx":
            writer.write(0b1110, 4)
            writer.write(token[1], idx_bits)
            writer.write(token[2], 8)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown CPACK token {kind!r}")


def _cpack_decode(reader: BitReader, idx_bits: int, words_per_line: int):
    tokens: List[Tuple] = []
    for _ in range(words_per_line):
        code = reader.read(2)
        if code == 0b00:
            tokens.append(("zzzz",))
        elif code == 0b01:
            tokens.append(("xxxx", reader.read(32)))
        elif code == 0b10:
            tokens.append(("mmmm", reader.read(idx_bits)))
        else:
            sub = reader.read(2)
            if sub == 0b00:
                tokens.append(("mmxx", reader.read(idx_bits), reader.read(16)))
            elif sub == 0b01:
                tokens.append(("zzzx", reader.read(8)))
            elif sub == 0b10:
                tokens.append(("mmmx", reader.read(idx_bits), reader.read(8)))
            else:
                raise CorruptPayloadError("invalid CPACK code 1111")
    return tokens


# --------------------------------------------------------------- zero

def _zero_encode(tokens, writer: BitWriter) -> None:
    word_count, nonzero = tokens
    nonzero_map = dict(nonzero)
    for i in range(word_count):
        writer.write(1 if i in nonzero_map else 0, 1)
    for __, value in nonzero:
        writer.write(value, 32)


def _zero_decode(reader: BitReader, words_per_line: int):
    mask = [reader.read(1) for _ in range(words_per_line)]
    nonzero = tuple(
        (i, reader.read(32)) for i, bit in enumerate(mask) if bit
    )
    return (words_per_line, nonzero)


# ---------------------------------------------------------------- BDI

_BDI_LAYOUTS = ("zeros", "rep", "b8d1", "b8d2", "b8d4", "b4d1", "b4d2", "b2d1", "raw")
_BDI_SIZES = {
    "b8d1": (8, 1),
    "b8d2": (8, 2),
    "b8d4": (8, 4),
    "b4d1": (4, 1),
    "b4d2": (4, 2),
    "b2d1": (2, 1),
}


def _signed(value: int, bits: int) -> int:
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _bdi_encode(tokens, writer: BitWriter, line_bytes: int) -> None:
    layout = tokens[0]
    writer.write(_BDI_LAYOUTS.index(layout), 4)
    if layout == "raw":
        writer.write_bytes(tokens[1])
        return
    if layout == "zeros":
        writer.write(0, 8)
        return
    if layout == "rep":
        writer.write(tokens[1] & ((1 << 64) - 1), 64)
        return
    __, base, mask, deltas, __line = tokens
    base_size, delta_size = _BDI_SIZES[layout]
    writer.write(base & ((1 << (base_size * 8)) - 1), base_size * 8)
    for use_base in mask:
        writer.write(1 if use_base else 0, 1)
    for delta in deltas:
        writer.write(delta & ((1 << (delta_size * 8)) - 1), delta_size * 8)


def _bdi_decode(reader: BitReader, line_bytes: int):
    selector = reader.read(4)
    if selector >= len(_BDI_LAYOUTS):
        raise CorruptPayloadError(f"invalid BDI layout selector {selector}")
    layout = _BDI_LAYOUTS[selector]
    if layout == "raw":
        return ("raw", reader.read_bytes(line_bytes))
    if layout == "zeros":
        reader.read(8)
        return ("zeros", 0, (), (), line_bytes)
    if layout == "rep":
        value = _signed(reader.read(64), 64)
        return ("rep", value, (), (), line_bytes)
    base_size, delta_size = _BDI_SIZES[layout]
    elements = line_bytes // base_size
    # The BDI compressor splits lines with *unsigned* struct formats,
    # so bases are unsigned; only deltas are two's-complement (they can
    # be negative when the element sits below the base). Sign-extending
    # the base here used to reconstruct values outside the unsigned
    # element range for lines with the top bit set.
    base = reader.read(base_size * 8)
    mask = tuple(bool(reader.read(1)) for _ in range(elements))
    deltas = tuple(
        _signed(reader.read(delta_size * 8), delta_size * 8)
        for _ in range(elements)
    )
    return (layout, base, mask, deltas, line_bytes)


# --------------------------------------------------------------- LZSS

def _lzss_encode(tokens, writer: BitWriter) -> None:
    for token in tokens:
        if token[0] == "lit":
            writer.write(0, 1)
            writer.write(token[1], 8)
        else:
            writer.write(1, 1)
            writer.write(token[1], 15)
            writer.write(token[2] - 3, 8)


def _lzss_decode(reader: BitReader, line_bytes: int):
    tokens: List[Tuple] = []
    produced = 0
    while produced < line_bytes:
        if reader.read(1) == 0:
            tokens.append(("lit", reader.read(8)))
            produced += 1
        else:
            offset = reader.read(15)
            length = reader.read(8) + 3
            tokens.append(("match", offset, length))
            produced += length
    if produced != line_bytes:
        raise CorruptPayloadError(
            f"LZSS stream produced {produced} bytes for a {line_bytes}-byte line"
        )
    return tokens


# -------------------------------------------------------------- ORACLE

def _oracle_dp_encode(tokens, writer: BitWriter, off_bits: int) -> None:
    for token in tokens:
        if token[0] == "lit":
            writer.write(0, 1)
            writer.write(token[1], 8)
        elif token[0] == "zero":
            writer.write(0b10, 2)
            writer.write(token[1] - 1, 6)
        else:
            writer.write(0b11, 2)
            writer.write(token[1], off_bits)
            writer.write(token[2] - 1, 6)


def _oracle_dp_decode(reader: BitReader, off_bits: int, line_bytes: int):
    tokens: List[Tuple] = []
    produced = 0
    while produced < line_bytes:
        if reader.read(1) == 0:
            tokens.append(("lit", reader.read(8)))
            produced += 1
        elif reader.read(1) == 0:
            length = reader.read(6) + 1
            tokens.append(("zero", length))
            produced += length
        else:
            offset = reader.read(off_bits)
            length = reader.read(6) + 1
            tokens.append(("copy", offset, length))
            produced += length
    if produced != line_bytes:
        raise CorruptPayloadError(
            f"ORACLE stream produced {produced} bytes for a {line_bytes}-byte line"
        )
    return tokens


# ======================================================================
# Payload-level codec
# ======================================================================

def encode_payload(payload: Payload, fmt: WireFormat = WireFormat()) -> BitWriter:
    """Flatten a payload to its exact wire bits."""
    writer = BitWriter()
    if payload.kind is PayloadKind.UNCOMPRESSED:
        writer.write(0, FLAG_BITS)
        writer.write_bytes(payload.raw)
        return writer
    writer.write(1, FLAG_BITS)
    refcount = len(payload.remote_lids)
    writer.write(refcount, REFCOUNT_BITS)
    for lid in payload.remote_lids:
        writer.write(int(lid) & ((1 << fmt.remotelid_bits) - 1), fmt.remotelid_bits)
    block = payload.block
    algorithm = block.algorithm
    if algorithm.startswith("lbe"):
        _lbe_encode(block.tokens, writer, fmt.lbe_offset_bits(refcount))
    elif algorithm.startswith("cpack"):
        _cpack_encode(block.tokens, writer, fmt.cpack_index_bits(refcount))
    elif algorithm.startswith("zero"):
        _zero_encode(block.tokens, writer)
    elif algorithm.startswith("bdi"):
        _bdi_encode(block.tokens, writer, fmt.line_bytes)
    elif algorithm.startswith("gzip"):
        _lzss_encode(block.tokens, writer)
    elif algorithm.startswith("oracle"):
        writer.write(0, 1)  # hybrid discriminator: 0 = exact DP
        _oracle_dp_encode(block.tokens, writer, fmt.oracle_offset_bits(refcount))
    else:  # pragma: no cover - defensive
        raise ValueError(f"no wire codec for engine {algorithm!r}")
    return writer


def encode_oracle_hybrid_lbe(payload: Payload, fmt: WireFormat = WireFormat()) -> BitWriter:
    """The ORACLE hybrid's other arm: an LBE-encoded block under the
    oracle discriminator (used when LBE beat the DP)."""
    writer = BitWriter()
    writer.write(1, FLAG_BITS)
    refcount = len(payload.remote_lids)
    writer.write(refcount, REFCOUNT_BITS)
    for lid in payload.remote_lids:
        writer.write(int(lid) & ((1 << fmt.remotelid_bits) - 1), fmt.remotelid_bits)
    writer.write(1, 1)  # discriminator: 1 = LBE arm
    _lbe_encode(payload.block.tokens, writer, fmt.lbe_reference_offset_bits(refcount))
    return writer


@dataclass
class DecodedPayload:
    """What the receiver recovers from the raw bits alone."""

    kind: PayloadKind
    remote_lids: Tuple[LineId, ...]
    block: CompressedBlock  # tokens reconstructed; size_bits = wire bits
    raw: bytes = b""


_KNOWN_ENGINES = ("lbe", "cpack", "zero", "bdi", "gzip", "oracle")


def decode_payload(
    data: bytes,
    bit_count: int,
    engine_name: str,
    fmt: WireFormat = WireFormat(),
) -> DecodedPayload:
    """Parse wire bits back into a decompressible payload.

    Malformed input raises the typed hierarchy of
    :mod:`repro.core.errors` (:class:`TruncatedPayloadError` /
    :class:`CorruptPayloadError`), never a bare ``ValueError`` — an
    unknown *engine_name* is the one exception, since that is a caller
    bug rather than wire corruption.
    """
    if not engine_name.startswith(_KNOWN_ENGINES):
        raise ValueError(f"no wire codec for engine {engine_name!r}")
    try:
        reader = BitReader(data, bit_count)
    except ValueError as exc:
        raise TruncatedPayloadError(str(exc)) from exc
    try:
        return _parse_payload(reader, bit_count, engine_name, fmt)
    except EOFError as exc:
        raise TruncatedPayloadError(f"payload truncated: {exc}") from exc
    except CorruptPayloadError:
        raise
    except (ValueError, IndexError, KeyError, OverflowError) as exc:
        raise CorruptPayloadError(f"payload bits unparseable: {exc}") from exc


def _parse_payload(
    reader: BitReader,
    bit_count: int,
    engine_name: str,
    fmt: WireFormat,
) -> DecodedPayload:
    if reader.read(FLAG_BITS) == 0:
        raw = reader.read_bytes(fmt.line_bytes)
        return DecodedPayload(
            kind=PayloadKind.UNCOMPRESSED, remote_lids=(), raw=raw,
            block=CompressedBlock("raw", fmt.line_bytes * 8, fmt.line_bytes),
        )
    refcount = reader.read(REFCOUNT_BITS)
    lids = tuple(LineId(reader.read(fmt.remotelid_bits)) for _ in range(refcount))
    words = fmt.words_per_line
    if engine_name.startswith("lbe"):
        tokens = _lbe_decode(reader, fmt.lbe_offset_bits(refcount), words)
        algorithm = "lbe"
    elif engine_name.startswith("cpack"):
        tokens = _cpack_decode(reader, fmt.cpack_index_bits(refcount), words)
        algorithm = engine_name
    elif engine_name.startswith("zero"):
        tokens = _zero_decode(reader, words)
        algorithm = "zero"
    elif engine_name.startswith("bdi"):
        tokens = _bdi_decode(reader, fmt.line_bytes)
        algorithm = "bdi"
    elif engine_name.startswith("gzip"):
        tokens = _lzss_decode(reader, fmt.line_bytes)
        algorithm = "gzip"
    elif engine_name.startswith("oracle"):
        if reader.read(1) == 0:
            tokens = _oracle_dp_decode(
                reader, fmt.oracle_offset_bits(refcount), fmt.line_bytes
            )
            algorithm = "oracle"
        else:
            tokens = _lbe_decode(
                reader, fmt.lbe_reference_offset_bits(refcount), words
            )
            algorithm = "lbe"
    else:  # pragma: no cover - defensive
        raise ValueError(f"no wire codec for engine {engine_name!r}")
    kind = (
        PayloadKind.WITH_REFERENCES if refcount else PayloadKind.NO_REFERENCE
    )
    block = CompressedBlock(
        algorithm, bit_count, fmt.line_bytes, tuple(tokens)
    )
    return DecodedPayload(kind=kind, remote_lids=lids, block=block)


# ======================================================================
# Link-layer framing: seq | payload | crc  (lossy-wire protection)
# ======================================================================

#: Frame sequence-tag width (reorder/replay detection window of 16).
FRAME_SEQ_BITS = 4

_CRC_PARAMS = {8: (0x07, 0xFF), 16: (0x1021, 0xFFFF)}  # width: (poly, init)
_CRC_TABLES: dict = {}


def _crc_table(width: int):
    table = _CRC_TABLES.get(width)
    if table is None:
        poly, __ = _CRC_PARAMS[width]
        top = 1 << (width - 1)
        mask = (1 << width) - 1
        table = []
        for byte in range(256):
            crc = byte << (width - 8)
            for _ in range(8):
                crc = ((crc << 1) ^ poly) if crc & top else (crc << 1)
            table.append(crc & mask)
        _CRC_TABLES[width] = table = tuple(table)
    return table


def _bit_prefix(data: bytes, bits: int) -> bytes:
    """The first *bits* bits of *data*, zero-padded to a byte — the
    exact bytes :meth:`BitWriter.getvalue` produces for that prefix."""
    nbytes = (bits + 7) // 8
    chunk = bytearray(data[:nbytes])
    pad = nbytes * 8 - bits
    if pad and nbytes:
        chunk[-1] &= (0xFF << pad) & 0xFF
    return bytes(chunk)


def frame_crc(data: bytes, bits: int, width: int = 16) -> int:
    """CRC over the first *bits* bits of *data* plus the bit length.

    Folding the length in means a frame truncated on a byte boundary
    (where zero padding alone could alias) still fails its check. The
    generator polynomials (CRC-8 0x07, CRC-16-CCITT 0x1021) detect
    every single-bit and every double-bit error at these frame sizes.
    """
    if width not in _CRC_PARAMS:
        raise ValueError(f"unsupported CRC width {width}")
    table = _crc_table(width)
    __, init = _CRC_PARAMS[width]
    mask = (1 << width) - 1
    shift = width - 8
    crc = init
    for byte in _bit_prefix(data, bits) + bits.to_bytes(4, "big"):
        crc = ((crc << 8) ^ table[((crc >> shift) ^ byte) & 0xFF]) & mask
    return crc


def encode_frame(
    payload: Payload,
    fmt: WireFormat = WireFormat(),
    engine_name: str = "lbe",
    seq: int = 0,
    crc_bits: int = 16,
    seq_bits: int = FRAME_SEQ_BITS,
) -> BitWriter:
    """Wrap a payload in a link-layer frame: ``seq | payload | crc``.

    Handles the ORACLE hybrid's LBE arm transparently (the payload
    records which arm won via its block's algorithm).
    """
    enabled = METRICS.enabled
    if enabled:
        t0 = perf_counter_ns()
    if (
        engine_name.startswith("oracle")
        and payload.kind is not PayloadKind.UNCOMPRESSED
        and payload.block.algorithm.startswith("lbe")
    ):
        body = encode_oracle_hybrid_lbe(payload, fmt)
    else:
        body = encode_payload(payload, fmt)
    writer = BitWriter()
    writer.write(seq & ((1 << seq_bits) - 1), seq_bits)
    writer.extend(body)
    crc = frame_crc(writer.getvalue(), writer.bit_count, crc_bits)
    writer.write(crc, crc_bits)
    if enabled:
        _STAGE_FRAME_ENCODE.observe(perf_counter_ns() - t0)
    return writer


def decode_frame(
    data: bytes,
    bit_count: int,
    engine_name: str,
    fmt: WireFormat = WireFormat(),
    crc_bits: int = 16,
    seq_bits: int = FRAME_SEQ_BITS,
    expected_seq: Optional[int] = None,
) -> Tuple[int, DecodedPayload]:
    """Verify and parse one frame; returns ``(seq, decoded)``.

    Raises :class:`~repro.core.errors.CrcMismatchError` on checksum
    failure (checked *before* any token parsing — corrupted bits never
    reach the codecs), :class:`~repro.core.errors.SequenceError` when
    *expected_seq* is given and the tag disagrees, and
    :class:`~repro.core.errors.TruncatedPayloadError` when the frame is
    too short to hold even an empty payload.
    """
    enabled = METRICS.enabled
    if enabled:
        t0 = perf_counter_ns()
    min_bits = seq_bits + crc_bits + FLAG_BITS
    if bit_count < min_bits or bit_count > len(data) * 8:
        raise TruncatedPayloadError(
            f"frame of {bit_count} bits cannot hold seq+payload+crc"
        )
    prefix_bits = bit_count - crc_bits
    stored = BitReader(data, bit_count)
    stored.seek(prefix_bits)  # jump to the trailing CRC field
    received_crc = stored.read(crc_bits)
    computed = frame_crc(data, prefix_bits, crc_bits)
    if received_crc != computed:
        raise CrcMismatchError(
            f"frame CRC {received_crc:#x} != computed {computed:#x}"
        )
    reader = BitReader(data, prefix_bits)
    seq = reader.read(seq_bits)
    if expected_seq is not None and seq != expected_seq:
        raise SequenceError(
            f"frame seq {seq} arrived while expecting {expected_seq}"
        )
    if not engine_name.startswith(_KNOWN_ENGINES):
        raise ValueError(f"no wire codec for engine {engine_name!r}")
    try:
        decoded = _parse_payload(
            reader, prefix_bits - seq_bits, engine_name, fmt
        )
    except EOFError as exc:
        raise TruncatedPayloadError(f"payload truncated: {exc}") from exc
    except CorruptPayloadError:
        raise
    except (ValueError, IndexError, KeyError, OverflowError) as exc:
        raise CorruptPayloadError(f"payload bits unparseable: {exc}") from exc
    if enabled:
        _STAGE_FRAME_DECODE.observe(perf_counter_ns() - t0)
    return seq, decoded


# ======================================================================
# Stream records: length-prefixed framing for byte-stream transports
# ======================================================================
#
# Everything above speaks (data, bit_count) pairs — fine for the
# in-process link, useless on a TCP socket where the receiver sees an
# arbitrary chunking of the byte stream and must find frame boundaries
# itself. A *stream record* wraps one bit-frame with a fixed header so
# an incremental decoder can reassemble frames across chunk
# boundaries: ``magic(1) | channel(1) | bit_count(4, big-endian) |
# ceil(bit_count / 8) payload bytes``. The channel byte is free for
# the transport's multiplexing (repro.serve uses it as the message
# kind); the payload is exactly what :meth:`BitWriter.getvalue`
# produced for ``bit_count`` bits.

#: First byte of every stream record — a cheap desync check on top of
#: whatever integrity the payload itself carries (DATA frames are
#: CRC-guarded; a magic mismatch means the stream lost framing and the
#: connection is unrecoverable).
STREAM_RECORD_MAGIC = 0xC3

#: Fixed stream-record header size in bytes.
STREAM_HEADER_BYTES = 6

#: Default reassembly bound. Generous for 64-byte lines (a raw frame
#: is ~70 bytes framed); anything claiming more is corruption, not a
#: big frame, and must not grow the buffer without limit.
MAX_STREAM_FRAME_BYTES = 4096


def encode_stream_record(channel: int, data: bytes, bit_count: int) -> bytes:
    """Wrap one bit-frame for a byte-stream transport."""
    if not 0 <= channel <= 0xFF:
        raise ValueError(f"stream channel {channel} does not fit one byte")
    nbytes = (bit_count + 7) // 8
    if len(data) < nbytes:
        raise ValueError(
            f"stream record claims {bit_count} bits but carries {len(data)} bytes"
        )
    return (
        bytes((STREAM_RECORD_MAGIC, channel))
        + bit_count.to_bytes(4, "big")
        + data[:nbytes]
    )


class FrameDecoder:
    """Incremental stream-record reassembler with a bounded buffer.

    Feed it whatever chunks the transport delivers — half a header,
    three frames and a tail, one byte at a time — and it yields every
    *complete* record as ``(channel, payload bytes, bit_count)`` while
    buffering at most one partial frame (bounded by
    ``max_frame_bytes``). Damage is typed, never silent:

    - a wrong magic byte raises :class:`CorruptPayloadError` (stream
      desync — frame boundaries are lost for good);
    - a header claiming more than ``max_frame_bytes`` raises
      :class:`CorruptPayloadError` before any payload is buffered, so
      corrupt lengths cannot balloon memory;
    - :meth:`close` with a partial record still buffered raises
      :class:`TruncatedPayloadError` (the peer died mid-frame).
    """

    def __init__(self, max_frame_bytes: int = MAX_STREAM_FRAME_BYTES) -> None:
        if max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be positive")
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self.frames_decoded = 0

    @property
    def buffered(self) -> int:
        """Bytes currently held for the next (incomplete) record."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[Tuple[int, bytes, int]]:
        """Consume one transport chunk; return every completed record."""
        self._buffer.extend(chunk)
        records: List[Tuple[int, bytes, int]] = []
        buffer = self._buffer
        offset = 0
        available = len(buffer)
        while available - offset >= STREAM_HEADER_BYTES:
            if buffer[offset] != STREAM_RECORD_MAGIC:
                raise CorruptPayloadError(
                    f"stream record magic {buffer[offset]:#04x} != "
                    f"{STREAM_RECORD_MAGIC:#04x} (framing lost)"
                )
            channel = buffer[offset + 1]
            bit_count = int.from_bytes(buffer[offset + 2 : offset + 6], "big")
            nbytes = (bit_count + 7) // 8
            if nbytes > self.max_frame_bytes:
                raise CorruptPayloadError(
                    f"stream record claims {nbytes} bytes, "
                    f"bound is {self.max_frame_bytes}"
                )
            if available - offset - STREAM_HEADER_BYTES < nbytes:
                break  # partial payload: wait for the next chunk
            start = offset + STREAM_HEADER_BYTES
            records.append((channel, bytes(buffer[start : start + nbytes]), bit_count))
            self.frames_decoded += 1
            offset = start + nbytes
        if offset:
            del buffer[:offset]
        return records

    def close(self) -> None:
        """Declare end-of-stream; loud if a record was cut mid-flight."""
        if self._buffer:
            raise TruncatedPayloadError(
                f"stream ended with {len(self._buffer)} bytes of a "
                "partial record buffered"
            )


# ======================================================================
# Resync handshake frames: HELLO / EPOCH  (crash recovery)
# ======================================================================

#: Resync-frame discriminator byte (never a valid payload-frame start
#: is not required — the receiver knows from protocol state which
#: decoder to use; the magic is a cheap cross-check on top of the CRC).
EPOCH_FRAME_MAGIC = 0xE5

#: A restarted endpoint announces itself and its restored epoch.
EPOCH_KIND_HELLO = 0
#: The surviving peer answers with the progress it last observed.
EPOCH_KIND_EPOCH = 1

_EPOCH_KINDS = (EPOCH_KIND_HELLO, EPOCH_KIND_EPOCH)


def encode_epoch_frame(
    kind: int,
    epoch: int,
    records: int,
    complete: bool = False,
    crc_bits: int = 16,
    seq_bits: int = FRAME_SEQ_BITS,
) -> BitWriter:
    """Build one resync handshake frame.

    Layout: ``seq(=0) | magic(8) | kind(2) | epoch(32) | records(32) |
    complete(1) | crc``. *records* is the journal length at *epoch*
    (HELLO) or the last journal length the peer observed (EPOCH); the
    pair lets both sides agree whether a journal replay actually
    reached the present before any DIFF is trusted.
    """
    if kind not in _EPOCH_KINDS:
        raise ValueError(f"unknown epoch-frame kind {kind}")
    writer = BitWriter()
    writer.write(0, seq_bits)  # handshake frames restart the window
    writer.write(EPOCH_FRAME_MAGIC, 8)
    writer.write(kind, 2)
    writer.write(epoch & 0xFFFFFFFF, 32)
    writer.write(records & 0xFFFFFFFF, 32)
    writer.write(1 if complete else 0, 1)
    crc = frame_crc(writer.getvalue(), writer.bit_count, crc_bits)
    writer.write(crc, crc_bits)
    return writer


def decode_epoch_frame(
    data: bytes,
    bit_count: int,
    crc_bits: int = 16,
    seq_bits: int = FRAME_SEQ_BITS,
) -> Tuple[int, int, int, bool]:
    """Verify and parse a handshake frame → ``(kind, epoch, records,
    complete)``. CRC is checked before any field is believed."""
    expected = seq_bits + 8 + 2 + 32 + 32 + 1 + crc_bits
    if bit_count != expected or bit_count > len(data) * 8:
        raise TruncatedPayloadError(
            f"epoch frame of {bit_count} bits, expected {expected}"
        )
    prefix_bits = bit_count - crc_bits
    stored = BitReader(data, bit_count)
    stored.seek(prefix_bits)
    received_crc = stored.read(crc_bits)
    computed = frame_crc(data, prefix_bits, crc_bits)
    if received_crc != computed:
        raise CrcMismatchError(
            f"epoch frame CRC {received_crc:#x} != computed {computed:#x}"
        )
    reader = BitReader(data, prefix_bits)
    reader.read(seq_bits)
    if reader.read(8) != EPOCH_FRAME_MAGIC:
        raise CorruptPayloadError("epoch frame magic mismatch")
    kind = reader.read(2)
    if kind not in _EPOCH_KINDS:
        raise CorruptPayloadError(f"unknown epoch-frame kind {kind}")
    epoch = reader.read(32)
    records = reader.read(32)
    complete = bool(reader.read(1))
    return kind, epoch, records, complete


def wire_format_for(config, engine=None) -> WireFormat:
    """Build the negotiated :class:`WireFormat` for a CABLE config.

    The CPACK dictionary size is engine configuration, so it must ride
    the negotiation: it is read off the live *engine* when provided
    (e.g. ``cpack128`` runs 32 entries), else defaulted.
    """
    cpack_entries = getattr(engine, "entries", None)
    if cpack_entries is None:
        cpack_entries = 32 if "128" in config.engine else 16
    return WireFormat(
        line_bytes=config.line_bytes,
        remotelid_bits=config.remotelid_bits,
        cpack_entries=cpack_entries,
    )
