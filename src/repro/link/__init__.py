"""Off-chip link substrate: flit packing, bandwidth and bit toggles."""

from repro.link.channel import LinkModel, LinkStats, PackedTransport
from repro.link.toggles import ToggleCounter, flitize, count_toggles
from repro.link.wire import WireFormat, encode_payload, decode_payload

__all__ = [
    "LinkModel",
    "LinkStats",
    "PackedTransport",
    "ToggleCounter",
    "flitize",
    "count_toggles",
    "WireFormat",
    "encode_payload",
    "decode_payload",
]
