#!/usr/bin/env python
"""Memory-link compression study across SPEC2006-like workloads.

A compact version of the paper's Figs 11/12: simulate several
benchmarks on the LLC↔L4 off-chip link under every compression scheme
and print the effective bandwidth gain of each, plus the normalized
CABLE-vs-CPACK view.

Run:  python examples/memory_link_study.py [benchmark ...]
"""

import sys

from repro.analysis import arithmetic_mean, format_table
from repro.sim.memlink import MemLinkConfig, run_memlink
from repro.trace.profiles import ALL_BENCHMARKS, ZERO_DOMINANT

SCHEMES = ("bdi", "cpack", "cpack128", "lbe256", "gzip", "cable")

#: A quick-running representative slice; pass benchmark names on the
#: command line (or "all") for more.
DEFAULT_BENCHMARKS = ("gcc", "dealII", "gobmk", "perlbench", "omnetpp", "mcf", "lbm")


def main() -> None:
    names = sys.argv[1:] or list(DEFAULT_BENCHMARKS)
    if names == ["all"]:
        names = list(ALL_BENCHMARKS)

    config = MemLinkConfig(
        accesses=4_000,
        llc_bytes=64 * 1024,
        l4_bytes=256 * 1024,
        ws_scale=1 / 16,  # keep the paper's footprint:cache pressure
    )
    rows = []
    cable_vals, cpack_vals = [], []
    for name in names:
        row = [name + ("*" if name in ZERO_DOMINANT else "")]
        for scheme in SCHEMES:
            result = run_memlink(name, config.scaled(scheme=scheme))
            row.append(result.effective_ratio)
        rows.append(row)
        cpack_vals.append(row[1 + SCHEMES.index("cpack")])
        cable_vals.append(row[1 + SCHEMES.index("cable")])

    print(format_table(["benchmark"] + list(SCHEMES), rows,
                       title="Effective link compression (x), * = zero-dominant"))
    cable = arithmetic_mean(cable_vals)
    cpack = arithmetic_mean(cpack_vals)
    print()
    print(f"CABLE mean: {cable:.2f}x   CPACK mean: {cpack:.2f}x   "
          f"CABLE is {100 * (cable / cpack - 1):.0f}% better")
    print("(paper: 8.2x vs 4.5x, 82% better, on full-length traces)")


if __name__ == "__main__":
    main()
