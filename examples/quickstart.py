#!/usr/bin/env python
"""Quickstart: a CABLE-compressed link between two caches.

Builds the paper's Fig 4 setup in miniature — a home cache (think
off-chip DRAM buffer) inclusive of a remote cache (think on-chip LLC)
with CABLE endpoints on the link — pushes a small synthetic workload
through it, and prints what the framework achieved.

Run:  python examples/quickstart.py
"""

import random
import struct

from repro import CableConfig, CableLinkPair
from repro.cache import CacheGeometry, InclusivePair, SetAssociativeCache
from repro.core.sync import audit


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Backing memory with inter-line similarity: lines are mutated
    #    copies of a handful of archetypes — the data redundancy CABLE
    #    exploits (Fig 2: A1 is similar to A at an unrelated address).
    # ------------------------------------------------------------------
    rng = random.Random(42)
    archetypes = [
        struct.pack("<16I", *(rng.getrandbits(32) | 0x01000000 for _ in range(16)))
        for _ in range(6)
    ]
    memory = {}

    def backing_read(addr: int) -> bytes:
        if addr not in memory:
            line = bytearray(archetypes[addr % len(archetypes)])
            r = random.Random(addr)
            struct.pack_into("<I", line, r.randrange(16) * 4, r.randrange(256))
            memory[addr] = bytes(line)
        return memory[addr]

    def backing_write(addr: int, data: bytes) -> None:
        memory[addr] = data

    # ------------------------------------------------------------------
    # 2. The caches: the home cache must be inclusive of the remote.
    # ------------------------------------------------------------------
    home = SetAssociativeCache(CacheGeometry(256 * 1024, ways=8), name="l4")
    remote = SetAssociativeCache(CacheGeometry(64 * 1024, ways=8), name="llc")
    pair = InclusivePair(home, remote, backing_read, backing_write)

    # ------------------------------------------------------------------
    # 3. CABLE on the link. The default config is the paper's baseline:
    #    LBE engine, 2 signatures/line, 2-deep hash buckets, 6 data
    #    accesses, up to 3 references, 17-bit RemoteLIDs.
    # ------------------------------------------------------------------
    link = CableLinkPair(CableConfig(), pair, verify=True)

    # ------------------------------------------------------------------
    # 4. Drive a random access stream. Every fill and write-back is
    #    compressed, transmitted, decompressed and verified.
    # ------------------------------------------------------------------
    for i in range(30_000):
        addr = rng.randrange(4_000)
        if rng.random() < 0.2:
            new = bytearray(backing_read(addr))
            struct.pack_into("<I", new, 0, i)
            link.access(addr, is_write=True, write_data=bytes(new))
        else:
            link.access(addr)

    # ------------------------------------------------------------------
    # 5. Results.
    # ------------------------------------------------------------------
    stats = link.home_encoder.stats
    print("CABLE quickstart")
    print("-" * 50)
    print(f"fills compressed:       {link.totals['fills']}")
    print(f"write-backs compressed: {link.totals['writebacks']}")
    print(f"payload compression:    {link.compression_ratio:.2f}x")
    with_refs = stats["with_references"] / max(stats["encodes"], 1)
    print(f"fills using references: {100 * with_refs:.1f}%")
    print(
        "avg references/fill:    "
        f"{stats['reference_count'] / max(stats['with_references'], 1):.2f}"
    )
    report = audit(link)
    print(f"sync audit:             {'OK' if report.ok else report.violations[:3]}")


if __name__ == "__main__":
    main()
