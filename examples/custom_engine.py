#!/usr/bin/env python
"""Plugging a custom compression engine into the CABLE framework.

CABLE is a framework, not an algorithm (§II-B): it finds similar
cache lines and hands them, as a temporary dictionary, to whatever
engine you pair it with. This example implements a deliberately simple
engine — XOR-against-best-reference with a zero-run code — registers
it, and runs it through the full link machinery (search, WMT pointer
compression, payload selection, verified decompression).

Run:  python examples/custom_engine.py
"""

import random
import struct
from typing import List, Sequence, Tuple

from repro import CableConfig, CableLinkPair
from repro.cache import CacheGeometry, InclusivePair, SetAssociativeCache
from repro.compression import ENGINE_FACTORIES, CompressedBlock, ReferenceCompressor
from repro.util.words import bytes_to_words, words_to_bytes


class XorDiffCompressor(ReferenceCompressor):
    """XOR the line with its best single reference, then zero-run code.

    A near-duplicate XORs to a nearly-zero line, which the run-length
    stage crushes — a two-line demonstration of why reference quality
    is most of the battle.
    """

    name = "xordiff"
    stateful = False

    def compress(self, line: bytes) -> CompressedBlock:
        return self.compress_with_references(line, ())

    def decompress(self, block: CompressedBlock) -> bytes:
        return self.decompress_with_references(block, ())

    def compress_with_references(
        self, line: bytes, references: Sequence[bytes]
    ) -> CompressedBlock:
        words = bytes_to_words(line)
        best_ref = -1
        best_bits = None
        best_tokens: Tuple = ()
        candidates: List[Sequence[int]] = [[0] * len(words)]
        candidates += [bytes_to_words(ref) for ref in references]
        for ref_index, ref_words in enumerate(candidates):
            residual = [w ^ r for w, r in zip(words, ref_words)]
            tokens, bits = self._run_length(residual)
            bits += 2  # which-reference selector (0 = no reference)
            if best_bits is None or bits < best_bits:
                best_bits = bits
                best_ref = ref_index
                best_tokens = tokens
        return CompressedBlock(
            self.name, best_bits, len(line), (best_ref, best_tokens)
        )

    def decompress_with_references(
        self, block: CompressedBlock, references: Sequence[bytes]
    ) -> bytes:
        ref_index, tokens = block.tokens
        if ref_index == 0:
            ref_words = [0] * (block.original_size // 4)
        else:
            ref_words = bytes_to_words(references[ref_index - 1])
        residual: List[int] = []
        for kind, payload in tokens:
            if kind == "z":
                residual.extend([0] * payload)
            else:
                residual.extend(payload)
        return words_to_bytes([w ^ r for w, r in zip(residual, ref_words)])

    def _run_length(self, residual: Sequence[int]) -> Tuple[Tuple, int]:
        tokens: List[Tuple] = []
        bits = 0
        i = 0
        while i < len(residual):
            if residual[i] == 0:
                run = 0
                while i < len(residual) and residual[i] == 0 and run < 16:
                    run += 1
                    i += 1
                tokens.append(("z", run))
                bits += 1 + 4
            else:
                chunk: List[int] = []
                while i < len(residual) and residual[i] != 0 and len(chunk) < 16:
                    chunk.append(residual[i])
                    i += 1
                tokens.append(("w", tuple(chunk)))
                bits += 1 + 4 + 32 * len(chunk)
        return tuple(tokens), bits


def main() -> None:
    # Register the engine under a name CableConfig can reference.
    ENGINE_FACTORIES["xordiff"] = XorDiffCompressor

    rng = random.Random(7)
    archetypes = [
        struct.pack("<16I", *(rng.getrandbits(32) | 0x01000000 for _ in range(16)))
        for _ in range(4)
    ]
    memory = {}

    def backing_read(addr: int) -> bytes:
        if addr not in memory:
            line = bytearray(archetypes[addr % 4])
            struct.pack_into("<I", line, 28, addr)
            memory[addr] = bytes(line)
        return memory[addr]

    home = SetAssociativeCache(CacheGeometry(128 * 1024, 8))
    remote = SetAssociativeCache(CacheGeometry(32 * 1024, 8))
    pair = InclusivePair(home, remote, backing_read, lambda a, d: memory.__setitem__(a, d))
    link = CableLinkPair(CableConfig(engine="xordiff"), pair)

    for _ in range(15_000):
        link.access(rng.randrange(2_000))

    print("CABLE + custom XOR-diff engine")
    print("-" * 40)
    print(f"payload compression: {link.compression_ratio:.2f}x")
    stats = link.home_encoder.stats
    print(f"fills with references: {stats['with_references']} / {stats['encodes']}")
    print("every transfer decompressed & verified exactly")


if __name__ == "__main__":
    main()
