#!/usr/bin/env python
"""CABLE's deployment variants side by side (§IV-B, §IV-C, §IV-D).

The baseline CABLE assumes an inclusive hierarchy with explicit
eviction notices. The paper's discussion section relaxes each
assumption; this example runs all four variants over the *same*
workload and shows what each one trades:

1. baseline       — inclusive, explicit eviction notices;
2. silent         — §IV-B: evictions inferred from way-replacement
                    info; in-flight references recovered from the
                    §IV-A eviction buffer;
3. non-inclusive  — §IV-C: home evictions leave remote copies;
                    write-backs compressed without references;
4. non-inclusive/raw — §IV-C with write-back compression disabled.

Run:  python examples/link_variants.py
"""

import random
import struct

from repro import CableConfig, CableLinkPair
from repro.cache import CacheGeometry, InclusivePair, SetAssociativeCache
from repro.core.noninclusive import NonInclusiveCableLink, NonInclusivePair


def make_backing(seed=11):
    rng = random.Random(seed)
    archetypes = [
        struct.pack(
            "<16I",
            *(
                0 if rng.random() < 0.4 else rng.getrandbits(32) | 0x01000000
                for _ in range(16)
            ),
        )
        for _ in range(6)
    ]
    store = {}

    def read(addr):
        if addr not in store:
            line = bytearray(archetypes[addr % 6])
            struct.pack_into("<I", line, 60, addr)
            store[addr] = bytes(line)
        return store[addr]

    def write(addr, data):
        store[addr] = data

    return read, write, store


def build(variant: str):
    read, write, store = make_backing()
    home = SetAssociativeCache(CacheGeometry(64 * 1024, 8), name="home")
    remote = SetAssociativeCache(CacheGeometry(16 * 1024, 4), name="remote")
    config = CableConfig()
    if variant == "baseline":
        link = CableLinkPair(config, InclusivePair(home, remote, read, write))
    elif variant == "silent":
        link = CableLinkPair(
            config,
            InclusivePair(home, remote, read, write),
            silent_evictions=True,
        )
    elif variant == "non-inclusive":
        link = NonInclusiveCableLink(
            config, NonInclusivePair(home, remote, read, write)
        )
    elif variant == "non-inclusive/raw":
        link = NonInclusiveCableLink(
            config,
            NonInclusivePair(home, remote, read, write),
            writeback_mode="raw",
        )
    else:
        raise ValueError(variant)
    link.backing_read = read
    return link


def drive(link, accesses=12_000, seed=5):
    rng = random.Random(seed)
    for i in range(accesses):
        addr = rng.randrange(1500)
        if rng.random() < 0.3:
            data = bytearray(link.backing_read(addr))
            struct.pack_into("<I", data, 0, i)
            link.access(addr, is_write=True, write_data=bytes(data))
        else:
            link.access(addr)


def main() -> None:
    print(f"{'variant':20s} {'ratio':>7s} {'ref fills':>10s} {'rescues':>8s}")
    print("-" * 50)
    for variant in ("baseline", "silent", "non-inclusive", "non-inclusive/raw"):
        link = build(variant)
        drive(link)
        stats = link.home_encoder.stats
        ref_pct = 100 * stats["with_references"] / max(stats["encodes"], 1)
        rescues = link.remote_decoder.stats["rescued_references"]
        print(
            f"{variant:20s} {link.compression_ratio:6.2f}x "
            f"{ref_pct:9.1f}% {rescues:8d}"
        )
    print()
    print("silent matches baseline (evictions inferred from requests);")
    print("non-inclusive pays on write-backs but keeps fill references;")
    print("every variant decompressed all traffic exactly (verify=True).")


if __name__ == "__main__":
    main()
