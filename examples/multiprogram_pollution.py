#!/usr/bin/env python
"""Dictionary pollution under multiprogramming (the Fig 15/16 story).

Runs one of the paper's Table VI mixes — four unrelated programs
interleaved on one link — and compares each program's compression
ratio against its single-program run, for gzip (fixed 32KB stream
window) and CABLE (dictionary = the shared cache, which grew with the
workload count).

Run:  python examples/multiprogram_pollution.py [MIX0..MIX7]
"""

import sys

from repro.analysis import arithmetic_mean, format_table
from repro.experiments.base import SCALES
from repro.sim.memlink import MemLinkConfig, run_memlink
from repro.sim.multiprogram import run_multiprogram
from repro.trace.mixes import TABLE_VI_MIXES


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "MIX5"
    names = TABLE_VI_MIXES[mix]
    preset = SCALES["default"]
    single_config = MemLinkConfig(
        accesses=preset.accesses,
        llc_bytes=preset.llc_bytes,
        l4_bytes=preset.l4_bytes,
        ws_scale=preset.ws_scale,
    )

    rows = []
    norms = {"gzip": [], "cable": []}
    multis = {
        scheme: run_multiprogram(names, scheme=scheme, preset=preset)
        for scheme in ("gzip", "cable")
    }
    for slot, name in enumerate(names):
        row = [f"{name}[{slot}]"]
        for scheme in ("gzip", "cable"):
            single = run_memlink(
                name, single_config.scaled(scheme=scheme)
            ).effective_ratio
            shared = multis[scheme].per_slot_ratio[slot]
            row.extend([single, shared, shared / single])
            norms[scheme].append(shared / single)
        rows.append(row)

    print(
        format_table(
            ["program", "gzip_single", "gzip_mix", "gzip_norm",
             "cable_single", "cable_mix", "cable_norm"],
            rows,
            title=f"{mix}: {', '.join(names)}",
        )
    )
    print()
    print(f"gzip  mean normalized ratio: {arithmetic_mean(norms['gzip']):.2f}")
    print(f"CABLE mean normalized ratio: {arithmetic_mean(norms['cable']):.2f}")
    print("(paper: gzip loses up to ~25% to pollution; CABLE holds or gains)")


if __name__ == "__main__":
    main()
