"""Fig 19 — cache-size and L4-ratio sweeps."""

from conftest import run_experiment
from repro.experiments import fig19


def test_fig19(benchmark, scale):
    result = run_experiment(benchmark, fig19.run, "fig19", scale=scale)
    # Paper: (b) averages within ~1%; model tolerance is wider but the
    # L4 ratio must matter far less than anything else.
    assert result.summary["b_cable_span"] < 1.3
