"""Cluster campaign + scaling sweep — multi-process kill tolerance."""

from conftest import run_experiment
from repro.experiments import cluster, cluster_scaling


def test_cluster(benchmark, scale):
    result = run_experiment(benchmark, cluster.run, "cluster", scale=scale)
    assert result.summary["kills"] >= 200
    assert result.summary["workers"] >= 8
    assert result.summary["recoveries"] >= result.summary["kills"]
    assert result.summary["lost_sessions"] == 0
    assert result.summary["silent_corruptions"] == 0
    assert result.summary["completed"] == result.summary["planned"]
    assert result.summary["p99_blip_bounded"] == 1
    assert result.summary["drained_clean"] == 1
    assert result.summary["campaign_ok"] == 1


def test_cluster_scaling(benchmark, scale):
    result = run_experiment(
        benchmark, cluster_scaling.run, "cluster_scaling", scale=scale
    )
    assert result.summary["silent_corruptions"] == 0
    assert result.summary["drained_clean"] == 1
    assert result.summary["scaling_ok"] == 1
