"""Benchmark harness conventions.

Each ``bench_*.py`` regenerates one of the paper's tables or figures
(DESIGN.md's experiment index) at the ``default`` scale preset. The
rendered rows/series are printed and archived under
``benchmarks/output/`` so EXPERIMENTS.md can quote them verbatim.

Simulations are memoized process-wide (see
:func:`repro.experiments.base.cached_memlink`), so figures sharing the
same underlying runs (11/12/14/17/18...) pay for them once.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def run_experiment(benchmark, run_fn, output_name: str, **kwargs):
    """Run an experiment once under pytest-benchmark and archive it."""
    result = benchmark.pedantic(lambda: run_fn(**kwargs), rounds=1, iterations=1)
    text = result.render()
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{output_name}.txt").write_text(text + "\n")
    print()
    print(text)
    return result


@pytest.fixture(scope="session")
def scale():
    return "default"
