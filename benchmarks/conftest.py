"""Benchmark harness conventions.

Each ``bench_*.py`` regenerates one of the paper's tables or figures
(DESIGN.md's experiment index) at the ``default`` scale preset. The
rendered rows/series are printed and archived under
``benchmarks/output/`` so EXPERIMENTS.md can quote them verbatim.

Simulations are memoized process-wide (see
:func:`repro.experiments.base.cached_memlink`), so figures sharing the
same underlying runs (11/12/14/17/18...) pay for them once.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def _archive_text(name: str, text: str) -> None:
    """Atomically write one archive file (temp + rename).

    A benchmark process killed mid-write (CI timeouts, OOM) must never
    leave a truncated archive behind: EXPERIMENTS.md gating reads these
    files and a half-written JSON would fail the drift check with a
    parse error instead of the real signal. ``os.replace`` is atomic on
    POSIX within one filesystem, and the temp file sits in the same
    directory to guarantee that.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    final = OUTPUT_DIR / name
    temp = OUTPUT_DIR / f".{name}.tmp{os.getpid()}"
    temp.write_text(text)
    os.replace(temp, final)

_STATS_FIELDS = (
    "min",
    "max",
    "mean",
    "stddev",
    "median",
    "iqr",
    "ops",
    "rounds",
    "total",
)


def archive_benchmark_stats(benchmark, output_name: str) -> None:
    """Dump the pytest-benchmark timing stats as ``{output_name}.stats.json``.

    Previously only the rendered text was archived, losing the actual
    timings. The getattr dance keeps this robust across pytest-benchmark
    versions, which move fields between Stats and its wrapper.
    """
    stats = getattr(benchmark, "stats", None)
    inner = getattr(stats, "stats", stats)
    payload = {}
    for field in _STATS_FIELDS:
        value = getattr(inner, field, getattr(stats, field, None))
        if callable(value):  # some versions expose these as methods
            try:
                value = value()
            except TypeError:
                value = None
        if isinstance(value, (int, float)):
            payload[field] = value
    if not payload:
        return
    _archive_text(
        f"{output_name}.stats.json",
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )


def archive_obs_snapshot(output_name: str) -> None:
    """Dump the metrics registry as ``{output_name}.obs.json``.

    Only when observability is on (``REPRO_OBS=1`` in the CI smoke
    jobs) — the default benchmark runs keep the registry disabled so
    the timings stay comparable to the archived baselines. The
    registry accumulates across tests in one process, so each archive
    is a running image; ``tools/obs_report.py`` renders them.
    """
    from repro.obs.registry import METRICS

    if not METRICS.enabled:
        return
    _archive_text(
        f"{output_name}.obs.json",
        json.dumps(METRICS.snapshot(), indent=2, sort_keys=True) + "\n",
    )


def run_experiment(benchmark, run_fn, output_name: str, **kwargs):
    """Run an experiment once under pytest-benchmark and archive it."""
    result = benchmark.pedantic(lambda: run_fn(**kwargs), rounds=1, iterations=1)
    text = result.render()
    _archive_text(f"{output_name}.txt", text + "\n")
    if hasattr(result, "as_json"):
        _archive_text(
            f"{output_name}.json",
            json.dumps(result.as_json(), indent=2, sort_keys=True) + "\n",
        )
    archive_benchmark_stats(benchmark, output_name)
    archive_obs_snapshot(output_name)
    print()
    print(text)
    return result


@pytest.fixture(scope="session")
def scale():
    return "default"
