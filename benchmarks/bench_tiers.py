"""Memory-tier scenarios — CXL / DRAM-cache / capacity-mode sweep."""

from conftest import run_experiment
from repro.experiments import tiers


def test_tiers(benchmark, scale):
    result = run_experiment(benchmark, tiers.run, "tiers", scale=scale)
    # Every tier round-trips its payloads; the capacity cache audits
    # its packing invariants; metadata overhead must be charged (net
    # gain strictly below the raw occupancy gain); the encoder must
    # never degrade the CXL fill-latency tail vs the raw link.
    assert result.summary["silent_corruptions"] == 0
    assert result.summary["capacity_audit_ok"] == 1
    assert result.summary["overhead_accounted"] == 1
    assert result.summary["cxl_p99_speedup_min"] >= 1.0
