"""Fig 18 — memory-subsystem energy breakdown."""

from conftest import run_experiment
from repro.experiments import fig18


def test_fig18(benchmark, scale):
    result = run_experiment(benchmark, fig18.run, "fig18", scale=scale)
    # Paper: ~15-16% average saving.
    assert result.summary["mean_saving_pct"] > 5
