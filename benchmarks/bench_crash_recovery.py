"""Crash-recovery campaign — snapshots + journal replay vs rebuild."""

from conftest import run_experiment
from repro.experiments import crash_recovery


def test_crash_recovery(benchmark, scale):
    result = run_experiment(
        benchmark, crash_recovery.run, "crash_recovery", scale=scale
    )
    assert result.summary["kill_points"] >= 1000
    assert result.summary["silent_corruptions"] == 0
    assert result.summary["snapshot_corruptions_detected"] > 0
    assert (
        result.summary["mean_replay_traffic_bits"]
        < result.summary["mean_rebuild_traffic_bits"]
    )
    assert result.summary["recovery_bounded"] == 1
