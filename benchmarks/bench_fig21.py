"""Fig 21 — hash-table size sweep."""

from conftest import run_experiment
from repro.experiments import fig21


def test_fig21(benchmark, scale):
    result = run_experiment(benchmark, fig21.run, "fig21", scale=scale)
    # Paper: graceful degradation; 1/8x loses <7% worst case (we allow
    # a wider band at reduced scale).
    assert result.summary["1/8x"] > 0.85
    assert result.summary["1/2048x"] > 0.4
