"""Fig 14 — throughput speedups at 256-2048 threads."""

from conftest import run_experiment
from repro.experiments import fig14


def test_fig14(benchmark, scale):
    result = run_experiment(benchmark, fig14.run, "fig14", scale=scale)
    # Paper: 378% average increase at 2048 threads, up to ~30x.
    assert result.summary["cable_mean_speedup_2048"] > 3
    assert result.summary["cable_max_speedup_2048"] > 10
