"""Tables II-VI — parameter/area tables regenerated from the models."""

import pathlib

from conftest import OUTPUT_DIR
from repro.experiments import tables


def test_tables(benchmark):
    def render_all():
        return "\n\n".join(
            factory().render()
            for factory in (
                tables.table_ii,
                tables.table_iii_result,
                tables.table_iv,
                tables.table_v,
                tables.table_vi,
            )
        )

    text = benchmark.pedantic(render_all, rounds=1, iterations=1)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "tables.txt").write_text(text + "\n")
    print()
    print(text)
    assert "1.76" in text  # Table III buffer hash-table overhead
