"""Resilience sweep — fault injection vs. link recovery."""

from conftest import run_experiment
from repro.experiments import resilience


def test_resilience(benchmark, scale):
    result = run_experiment(benchmark, resilience.run, "resilience", scale=scale)
    assert result.summary["silent_corruptions"] == 0
    assert result.summary["breaker_trips_at_max_rate"] > 0
    assert result.summary["breaker_rearms_at_max_rate"] > 0
