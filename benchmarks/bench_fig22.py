"""Fig 22 — data-access-count sweep."""

from conftest import run_experiment
from repro.experiments import fig22


def test_fig22(benchmark, scale):
    result = run_experiment(benchmark, fig22.run, "fig22", scale=scale)
    # Paper: one access stays within ~80% of 64.
    assert result.summary["1"] > 0.75
    assert result.summary["16"] >= result.summary["1"]
