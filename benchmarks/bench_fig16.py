"""Fig 16 — destructive multiprogram mixes (Table VI)."""

from conftest import run_experiment
from repro.experiments import fig16


def test_fig16(benchmark, scale):
    result = run_experiment(benchmark, fig16.run, "fig16", scale=scale)
    # Paper: gzip suffers pollution; CABLE holds its ratios.
    assert result.summary["cable_mean_norm"] > result.summary["gzip_mean_norm"]
