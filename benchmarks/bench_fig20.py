"""Fig 20 — CABLE paired with different engines."""

from conftest import run_experiment
from repro.experiments import fig20


def test_fig20(benchmark, scale):
    result = run_experiment(benchmark, fig20.run, "fig20", scale=scale)
    summary = result.summary
    assert summary["oracle_geomean"] >= summary["lbe_geomean"]
    assert summary["lbe_geomean"] > summary["cpack128_geomean"]
