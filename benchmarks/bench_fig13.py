"""Fig 13 — coherence-link compression on a 4-chip CMP."""

from conftest import run_experiment
from repro.experiments import fig13


def test_fig13(benchmark, scale):
    result = run_experiment(benchmark, fig13.run, "fig13", scale=scale)
    assert result.summary["cable_pct_better"] > 20
