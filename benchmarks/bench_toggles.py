"""§VI-D — bit-toggle reduction."""

from conftest import run_experiment
from repro.experiments import toggles


def test_toggles(benchmark, scale):
    result = run_experiment(benchmark, toggles.run, "toggles", scale=scale)
    assert result.summary["cable_mean_pct"] > 0
