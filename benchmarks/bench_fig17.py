"""Fig 17 — single-thread performance degradation."""

from conftest import run_experiment
from repro.experiments import fig17


def test_fig17(benchmark, scale):
    result = run_experiment(benchmark, fig17.run, "fig17", scale=scale)
    # Paper: CABLE ~5% average / ~10% worst; proportional to latency.
    assert result.summary["cable_mean_pct"] < 10
    assert result.summary["cpack_mean_pct"] < result.summary["cable_mean_pct"]
    assert result.summary["cable_mean_pct"] < result.summary["gzip_mean_pct"]
