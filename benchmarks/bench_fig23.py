"""Fig 23 — link width sweep + packed transport."""

from conftest import run_experiment
from repro.experiments import fig23


def test_fig23(benchmark, scale):
    result = run_experiment(benchmark, fig23.run, "fig23", scale=scale)
    assert result.summary["ratio_16b"] > result.summary["ratio_64b"]
    assert result.summary["ratio_64b_packed"] > result.summary["ratio_64b"]
