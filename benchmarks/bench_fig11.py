"""Fig 11 — off-chip link compression normalized to CPACK."""

from conftest import run_experiment
from repro.experiments import fig11


def test_fig11(benchmark, scale):
    result = run_experiment(benchmark, fig11.run, "fig11", scale=scale)
    # Paper: CABLE ~1.47x over a CPACK-equipped system.
    assert result.summary["cable_vs_cpack_mean"] > 1.2
