"""Design-choice ablations (DESIGN.md §5)."""

from conftest import run_experiment
from repro.experiments import ablations


def test_ablations(benchmark, scale):
    result = run_experiment(benchmark, ablations.run, "ablations", scale=scale)
    summary = result.summary
    # Greedy ranking never loses to naive top-coverage picking.
    assert summary["ranking:greedy*"] >= summary["ranking:top"] * 0.98
    # Deeper buckets should not collapse the ratio.
    assert summary["bucket_depth:4"] > summary["bucket_depth:1"] * 0.8
