"""Fig 3 — ideal dictionary compression vs dictionary size."""

from conftest import run_experiment
from repro.experiments import fig03


def test_fig03(benchmark, scale):
    result = run_experiment(benchmark, fig03.run, "fig03", scale=scale)
    assert result.summary["ideal_growth"] > result.summary["pointer_growth"]
