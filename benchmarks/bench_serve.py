"""Serving sweep — the link service under concurrent client load."""

from conftest import run_experiment
from repro.experiments import serving


def test_serving(benchmark, scale):
    result = run_experiment(benchmark, serving.run, "serving", scale=scale)
    assert result.summary["silent_corruptions"] == 0
    assert result.summary["backpressure_events"] > 0
    assert result.summary["max_sessions"] >= 16
    assert result.summary["drained_clean"] == 1
