"""Fig 12 — raw compression ratios across all 29 benchmarks."""

from conftest import run_experiment
from repro.experiments import fig12


def test_fig12(benchmark, scale):
    result = run_experiment(benchmark, fig12.run, "fig12", scale=scale)
    summary = result.summary
    # Paper shape: CABLE ~8.2x vs CPACK ~4.5x; easy group >= 16x.
    assert summary["cable_mean"] > summary["cpack_mean"] * 1.3
    assert summary["easy_group_cable_mean"] > 10
