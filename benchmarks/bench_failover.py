"""Failover campaign — kill the primary under live client traffic."""

from conftest import run_experiment
from repro.experiments import failover


def test_failover(benchmark, scale):
    result = run_experiment(benchmark, failover.run, "failover", scale=scale)
    assert result.summary["silent_corruptions"] == 0
    assert result.summary["kills"] > 0
    assert result.summary["hot_promotions"] > 0
    assert result.summary["warm_promotions"] > 0
    assert result.summary["catch_ups"] > 0
    assert result.summary["lag_bounded"] == 1
    assert result.summary["p99_blip_bounded"] == 1
    assert result.summary["drained_clean"] == 1
