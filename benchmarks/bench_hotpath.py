"""Hot-path microbenchmarks for the kernels layer.

Unlike the ``bench_fig*`` files, which regenerate paper figures, this
file times the primitives the encode pipeline is built from — H3
hashing, signature extraction, reference search, and the end-to-end
``CableHomeEncoder.encode()`` loop — so regressions in the kernels
layer show up directly in lines/s rather than indirectly in a figure's
wall time.

The end-to-end benchmark drives encode with a *recurrent* working set:
a fixed population of resident lines re-encoded in varying order, which
is what a cache simulation actually does (the same resident lines cross
the link many times). The per-line memo caches are warm in steady
state, exactly as they are mid-simulation.

Results are printed and archived to ``benchmarks/output/hotpath.txt``
(plus ``.stats.json`` timing dumps) so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import random
import struct
from typing import List

import pytest
from conftest import OUTPUT_DIR, archive_benchmark_stats, archive_obs_snapshot

from repro.cache.line import CoherenceState
from repro.cache.setassoc import CacheGeometry, SetAssociativeCache
from repro.core.config import CableConfig
from repro.core.encoder import CableHomeEncoder
from repro.core.signature import SignatureExtractor
from repro.util import kernels

#: Collected "name: value unit" rows, written to hotpath.txt at the end.
_RESULTS: List[str] = []

_WORDS_PER_LINE = 16
_RESIDENT_LINES = 512
_STREAM_LINES = 2000


def _round_seconds(benchmark) -> float:
    """Median round time — robust against scheduler outliers, which
    on shared CI machines can stretch individual rounds several-fold
    and make mean-based rates unrepeatable."""
    stats = getattr(benchmark, "stats", None)
    inner = getattr(stats, "stats", stats)
    for field in ("median", "mean"):
        value = getattr(inner, field, getattr(stats, field, None))
        if value:
            return float(value)
    return 0.0


def _record(benchmark, name: str, per_round: int, unit: str) -> float:
    rate = per_round / _round_seconds(benchmark)
    _RESULTS.append(f"{name}: {rate:,.0f} {unit}")
    archive_benchmark_stats(benchmark, f"hotpath_{name}")
    archive_obs_snapshot(f"hotpath_{name}")
    return rate


def make_lines(count: int, seed: int = 7) -> List[bytes]:
    """A family of near-duplicate lines, like a real reference stream.

    Every line shares most words with a rotating base line, so searches
    find real candidates and the reference compressors do real work.
    """
    rng = random.Random(seed)
    base = [rng.getrandbits(32) | 0x01000000 for _ in range(_WORDS_PER_LINE)]
    lines = []
    for i in range(count):
        words = list(base)
        for _ in range(rng.randrange(0, 6)):
            words[rng.randrange(_WORDS_PER_LINE)] = rng.getrandbits(32)
        if i % 4 == 0:
            base = [
                rng.getrandbits(32) | 0x01000000 for _ in range(_WORDS_PER_LINE)
            ]
        lines.append(struct.pack(f"<{_WORDS_PER_LINE}I", *words))
    return lines


def _build_encoder() -> CableHomeEncoder:
    """A 64KB 8-way home cache fully wired up with a resident family."""
    geometry = CacheGeometry(64 * 1024, 8)
    home = SetAssociativeCache(geometry, name="l4")
    encoder = CableHomeEncoder(CableConfig(), home, geometry)
    for addr, data in enumerate(make_lines(_RESIDENT_LINES)):
        way, __ = home.install(addr * 64, data, state=CoherenceState.SHARED)
        lid = home.lineid(home.index_of(addr * 64), way)
        encoder.wmt.install(lid, lid)
        for sig in encoder.extractor.index_signatures(data):
            encoder.hash_table.insert(sig, lid)
    return encoder


@pytest.fixture(scope="module", autouse=True)
def _archive_results():
    yield
    if _RESULTS:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / "hotpath.txt").write_text(
            "hot-path microbenchmarks (higher is better)\n"
            + "\n".join(_RESULTS)
            + "\n"
        )


def test_h3_hash(benchmark):
    """Table-driven H3 over a word stream (4 lookups + 3 XORs each)."""
    extractor = SignatureExtractor(CableConfig())
    rng = random.Random(3)
    words = [rng.getrandbits(32) for _ in range(1024)]
    hash_fn = extractor.hash

    def run():
        for word in words:
            hash_fn(word)

    benchmark(run)
    _record(benchmark, "h3_hash", len(words), "words/s")


def test_signature_extraction_cold(benchmark):
    """Uncached extraction: fresh per-line work, no memo hits."""
    lines = make_lines(256, seed=5)
    config = CableConfig()

    def setup():
        kernels.clear_caches()
        return (SignatureExtractor(config),), {}

    def run(extractor):
        for line in lines:
            extractor.search_signatures(line)

    benchmark.pedantic(run, setup=setup, rounds=20, iterations=1)
    _record(benchmark, "signature_extraction_cold", len(lines), "lines/s")


def test_signature_extraction_hot(benchmark):
    """Steady-state extraction: the per-line memo caches answer."""
    lines = make_lines(256, seed=5)
    extractor = SignatureExtractor(CableConfig())
    for line in lines:  # warm
        extractor.search_signatures(line)

    def run():
        for line in lines:
            extractor.search_signatures(line)

    benchmark(run)
    _record(benchmark, "signature_extraction_hot", len(lines), "lines/s")


def test_search_pipeline(benchmark):
    """Signature probe + CBV construction + greedy selection."""
    encoder = _build_encoder()
    search = encoder.pipeline.search
    lines = make_lines(256, seed=11)
    for line in lines:  # warm the memo caches: steady-state search
        search(line)

    def run():
        for line in lines:
            search(line)

    benchmark(run)
    _record(benchmark, "search_pipeline", len(lines), "searches/s")


def test_encode_recurrent(benchmark):
    """End-to-end encode over a recurrent working set (lines/s).

    This is the acceptance metric: the stream revisits a resident
    family the way a simulation re-encodes resident lines, so the
    steady state exercises search, both compressors, payload choice,
    and the memo caches together.
    """
    encoder = _build_encoder()
    stream = make_lines(_STREAM_LINES, seed=11)
    for data in stream[:200]:  # warm
        encoder.encode(0, data, None)

    def run():
        for data in stream:
            encoder.encode(0, data, None)

    benchmark(run)
    rate = _record(benchmark, "encode_recurrent", len(stream), "lines/s")
    assert rate > 0


def test_encode_recurrent_batch(benchmark):
    """``encode_batch()`` over the same recurrent stream (lines/s).

    Runs *after* ``test_encode_recurrent`` so the scalar row keeps its
    historical measurement conditions; the batch encoder is warmed
    with one full pass so the generation-guarded cross-block result
    cache answers in steady state — the regime a simulation lives in.
    Before timing, the run proves byte-identity against a twin scalar
    encoder and archives the deterministic verdict to
    ``hotpath_batch.txt`` (CI's ``check_experiments_md.py`` gates on
    it; the rates themselves stay machine-dependent and unchecked).
    """
    encoder = _build_encoder()
    scalar = _build_encoder()
    stream = make_lines(_STREAM_LINES, seed=11)
    items = [(0, data, None) for data in stream]
    batch_out = encoder.encode_batch(items)  # warm full pass
    scalar_out = [scalar.encode(0, data, None) for data in stream]
    identical = int(
        [o.payload for o in batch_out] == [o.payload for o in scalar_out]
    )
    stats_identical = int(
        encoder.stats == scalar.stats
        and encoder.hash_table.stats == scalar.hash_table.stats
        and encoder.wmt.stats == scalar.wmt.stats
        and encoder.home_cache.stats == scalar.home_cache.stats
    )

    def run():
        encoder.encode_batch(items)

    benchmark(run)
    rate = _record(benchmark, "encode_recurrent_batch", len(stream), "lines/s")
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "hotpath_batch.txt").write_text(
        "batched encode vs scalar (deterministic equivalence verdict)\n"
        f"summary: lines={len(stream)}, block_size="
        f"{encoder.config.batch_block_size}, scalar_identical={identical}, "
        f"stats_identical={stats_identical}\n"
    )
    assert identical == 1
    assert stats_identical == 1
    assert rate > 0
