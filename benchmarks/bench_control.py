"""§VI-D — on/off compression control."""

from conftest import run_experiment
from repro.experiments import control


def test_control(benchmark, scale):
    result = run_experiment(benchmark, control.run, "control", scale=scale)
    assert result.summary["mean_controlled_degr_pct"] < 1
