"""Adaptive knob tuning — static sweep vs. online bandit ablation."""

from conftest import run_experiment
from repro.experiments import adaptive_tuning


def test_adaptive_tuning(benchmark, scale):
    result = run_experiment(
        benchmark, adaptive_tuning.run, "adaptive_tuning", scale=scale
    )
    # The controller must never be worth less than the worst static
    # arm (by the checked margin), must corrupt nothing in serve mode,
    # and reconfigured pairs must match natively-built ones bit for bit.
    assert result.summary["min_adp_vs_worst"] >= adaptive_tuning.WORST_MARGIN
    assert result.summary["serve_silent_corruptions"] == 0
    assert result.summary["serve_completed"] == result.summary["serve_planned"]
    assert result.summary["arms_payload_identical"] == 1
