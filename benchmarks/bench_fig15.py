"""Fig 15 — cooperative multiprogram (Single vs Multi4)."""

from conftest import run_experiment
from repro.experiments import fig15


def test_fig15(benchmark, scale):
    result = run_experiment(benchmark, fig15.run, "fig15", scale=scale)
    assert result.summary["cable_mean_gain"] > result.summary["gzip_mean_gain"] * 0.9
